package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// irreducibleDiamond builds the classic two-entry cycle:
// entry → a → x ⇄ y, entry → b → y, {x,y} → exit.
func irreducibleDiamond() (*Graph, *Block, *Block) {
	g := &Graph{}
	e := g.NewBlock(KEntry)
	a := g.NewBlock(KStmt)
	b := g.NewBlock(KStmt)
	x := g.NewBlock(KStmt)
	y := g.NewBlock(KStmt)
	exit := g.NewBlock(KExit)
	g.Entry, g.Exit = e, exit
	g.AddEdge(e, a)
	g.AddEdge(e, b)
	g.AddEdge(a, x)
	g.AddEdge(b, y)
	g.AddEdge(x, y)
	g.AddEdge(y, x)
	g.AddEdge(y, exit)
	return g, x, y
}

func TestMakeReducibleDiamond(t *testing.T) {
	g, _, _ := irreducibleDiamond()
	if g.Reducible() {
		t.Fatal("diamond should start irreducible")
	}
	before := len(g.Blocks)
	if err := g.MakeReducible(0); err != nil {
		t.Fatal(err)
	}
	if !g.Reducible() {
		t.Fatal("graph still irreducible after MakeReducible")
	}
	if len(g.Blocks) <= before {
		t.Fatal("splitting should have added blocks")
	}
	// edges stay consistent
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %v -> %v lost its pred link", b, s)
			}
		}
	}
}

func TestMakeReducibleNoOpOnReducible(t *testing.T) {
	g := build(t, "do i = 1, n\n x = 1\nenddo")
	before := len(g.Blocks)
	if err := g.MakeReducible(0); err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != before {
		t.Fatal("reducible graph must not be modified")
	}
}

// TestMakeReducibleNested puts an irreducible pair inside a natural
// loop: h → {x ⇄ y entered from two places inside the loop} → h.
func TestMakeReducibleNested(t *testing.T) {
	g := &Graph{}
	e := g.NewBlock(KEntry)
	h := g.NewBlock(KStmt) // acts as loop header
	a := g.NewBlock(KStmt)
	b := g.NewBlock(KStmt)
	x := g.NewBlock(KStmt)
	y := g.NewBlock(KStmt)
	latch := g.NewBlock(KStmt)
	exit := g.NewBlock(KExit)
	g.Entry, g.Exit = e, exit
	g.AddEdge(e, h)
	g.AddEdge(h, a)
	g.AddEdge(h, b)
	g.AddEdge(a, x)
	g.AddEdge(b, y)
	g.AddEdge(x, y)
	g.AddEdge(y, x)
	g.AddEdge(y, latch)
	g.AddEdge(latch, h)
	g.AddEdge(latch, exit)
	if g.Reducible() {
		t.Fatal("nested construction should be irreducible")
	}
	if err := g.MakeReducible(0); err != nil {
		t.Fatal(err)
	}
	if !g.Reducible() {
		t.Fatal("still irreducible")
	}
}

// TestMakeReducibleRandom: random graphs (possibly irreducible) all
// become reducible within the split budget.
func TestMakeReducibleRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &Graph{}
		e := g.NewBlock(KEntry)
		g.Entry = e
		n := 4 + r.Intn(8)
		nodes := []*Block{e}
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.NewBlock(KStmt))
		}
		exit := g.NewBlock(KExit)
		g.Exit = exit
		nodes = append(nodes, exit)
		// random forward and backward edges; keep everything reachable
		for i := 0; i < len(nodes)-1; i++ {
			g.AddEdge(nodes[i], nodes[i+1])
		}
		for k := 0; k < n; k++ {
			from := nodes[1+r.Intn(len(nodes)-2)]
			to := nodes[1+r.Intn(len(nodes)-2)]
			if from == to || from == exit || to == e {
				continue
			}
			dup := false
			for _, s := range from.Succs {
				if s == to {
					dup = true
				}
			}
			if !dup {
				g.AddEdge(from, to)
			}
		}
		// node splitting is worst-case exponential; a clean budget error
		// is acceptable on adversarial dense graphs, a hang is not
		if err := g.MakeReducible(120); err != nil {
			t.Logf("seed %d: budget: %v", seed, err)
			return true
		}
		return g.Reducible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
