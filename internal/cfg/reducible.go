package cfg

import (
	"fmt"
	"sort"
)

// MakeReducible turns an irreducible graph into a reducible one by node
// splitting (Cocke/Miller [CM69], cited by paper §3.3): while some
// strongly connected region has multiple entry nodes, one secondary
// entry is duplicated — one copy per extra incoming edge — until every
// cycle is entered through a unique header. Statements are shared
// (pointers), so duplicated blocks execute the same code.
//
// Splitting can blow up exponentially in the worst case; limit bounds
// the number of node splits (0 means 4× the original block count). The
// mini-Fortran frontend never produces irreducible graphs, so this pass
// exists for hand-built graphs and for completeness of the framework.
func (g *Graph) MakeReducible(limit int) error {
	if limit == 0 {
		limit = 4 * len(g.Blocks)
	}
	splits := 0
	for !g.Reducible() {
		all := map[*Block]bool{}
		for _, b := range g.Blocks {
			all[b] = true
		}
		target, outside := g.findSplitCandidate(all)
		if target == nil {
			return fmt.Errorf("cfg: MakeReducible: no candidate found on irreducible graph")
		}
		if splits++; splits > limit {
			return fmt.Errorf("cfg: MakeReducible: split limit %d exceeded", limit)
		}
		g.splitNode(target, outside)
	}
	return nil
}

// findSplitCandidate looks for a multiple-entry strongly connected
// region within the subset: its cheapest secondary entry (fewest
// predecessors) is the node to duplicate. Single-entry regions recurse
// with their entry removed, so nested irreducible loops are found too.
func (g *Graph) findSplitCandidate(subset map[*Block]bool) (*Block, []*Block) {
	for _, comp := range g.sccsOf(subset) {
		if len(comp) < 2 {
			continue
		}
		inComp := map[*Block]bool{}
		for _, b := range comp {
			inComp[b] = true
		}
		var entries []*Block
		seen := map[*Block]bool{}
		for _, b := range comp {
			for _, p := range b.Preds {
				if !inComp[p] && !seen[b] {
					seen[b] = true
					entries = append(entries, b)
				}
			}
		}
		switch {
		case len(entries) >= 2:
			// split the entry with the fewest outside predecessors and
			// keep the busiest one as the region's eventual header
			sort.Slice(entries, func(i, j int) bool {
				oi, oj := outsideCount(entries[i], inComp), outsideCount(entries[j], inComp)
				if oi != oj {
					return oi < oj
				}
				return entries[i].ID < entries[j].ID
			})
			target := entries[0]
			var outside []*Block
			for _, p := range target.Preds {
				if !inComp[p] {
					outside = append(outside, p)
				}
			}
			return target, outside
		case len(entries) == 1:
			// natural loop at this level; look inside it
			inner := map[*Block]bool{}
			for _, b := range comp {
				if b != entries[0] {
					inner[b] = true
				}
			}
			if c, o := g.findSplitCandidate(inner); c != nil {
				return c, o
			}
		}
	}
	return nil, nil
}

func outsideCount(b *Block, inComp map[*Block]bool) int {
	n := 0
	for _, p := range b.Preds {
		if !inComp[p] {
			n++
		}
	}
	return n
}

// splitNode makes one copy of n that takes over the predecessors outside
// n's strongly connected region (outside), sharing n's statement and
// successor edges; the original keeps the inside predecessors and thus
// stops being an entry of the region. One split removes one secondary
// entry, which converges much faster than per-predecessor duplication.
func (g *Graph) splitNode(n *Block, outside []*Block) {
	succs := append([]*Block(nil), n.Succs...)
	dup := g.NewBlock(n.Kind)
	dup.Stmt, dup.Loop, dup.Cond, dup.LabelName = n.Stmt, n.Loop, n.Cond, n.LabelName
	for _, p := range outside {
		replaceSucc(p, n, dup)
		removeFrom(&n.Preds, p)
		dup.Preds = append(dup.Preds, p)
	}
	for _, s := range succs {
		g.AddEdge(dup, s)
	}
}

// sccsOf returns the strongly connected components of the subgraph
// induced by subset (Tarjan's algorithm).
func (g *Graph) sccsOf(subset map[*Block]bool) [][]*Block {
	index := map[*Block]int{}
	low := map[*Block]int{}
	onStack := map[*Block]bool{}
	var stack []*Block
	var out [][]*Block
	counter := 0

	var strong func(b *Block)
	strong = func(b *Block) {
		index[b] = counter
		low[b] = counter
		counter++
		stack = append(stack, b)
		onStack[b] = true
		for _, s := range b.Succs {
			if !subset[s] {
				continue
			}
			if _, seen := index[s]; !seen {
				strong(s)
				if low[s] < low[b] {
					low[b] = low[s]
				}
			} else if onStack[s] && index[s] < low[b] {
				low[b] = index[s]
			}
		}
		if low[b] == index[b] {
			var comp []*Block
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == b {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, b := range g.Blocks {
		if subset[b] {
			if _, seen := index[b]; !seen {
				strong(b)
			}
		}
	}
	return out
}
