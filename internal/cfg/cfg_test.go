package cfg

import (
	"testing"

	"givetake/internal/frontend"
	"givetake/internal/ir"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func countKind(g *Graph, k Kind) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Kind == k {
			n++
		}
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x = 1\ny = 2\nz = 3")
	if len(g.Blocks) != 5 { // entry, 3 stmts, exit
		t.Fatalf("blocks = %d, want 5\n%s", len(g.Blocks), g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// chain shape
	cur := g.Entry
	for i := 0; i < 4; i++ {
		if len(cur.Succs) != 1 {
			t.Fatalf("%v has %d succs", cur, len(cur.Succs))
		}
		cur = cur.Succs[0]
	}
	if cur != g.Exit {
		t.Fatalf("chain does not end at exit")
	}
}

func TestDoLoopShape(t *testing.T) {
	g := build(t, "do i = 1, n\n x = 1\nenddo\ny = 2")
	var h *Block
	for _, b := range g.Blocks {
		if b.Kind == KHeader {
			h = b
		}
	}
	if h == nil {
		t.Fatal("no header block")
	}
	if len(h.Succs) != 2 {
		t.Fatalf("header succs = %d, want 2 (body, exit)", len(h.Succs))
	}
	body := h.Succs[0]
	if body.Kind != KStmt {
		t.Fatalf("Succs[0] = %v, want body stmt", body)
	}
	if len(body.Succs) != 1 || body.Succs[0] != h {
		t.Fatalf("body should have single back edge to header, got %v", body.Succs)
	}
	if !g.Reducible() {
		t.Fatal("loop graph should be reducible")
	}
	if be := g.BackEdges(); len(be) != 1 || be[0][1] != h {
		t.Fatalf("back edges = %v", be)
	}
}

func TestEmptyDoLoopGetsContinueBody(t *testing.T) {
	g := build(t, "do i = 1, n\nenddo")
	var h *Block
	for _, b := range g.Blocks {
		if b.Kind == KHeader {
			h = b
		}
	}
	if h == nil || len(h.Succs) != 2 {
		t.Fatalf("header shape wrong: %v", h)
	}
	if _, ok := h.Succs[0].Stmt.(*ir.Continue); !ok {
		t.Fatalf("empty loop body should be a continue node, got %v", h.Succs[0])
	}
}

func TestIfElseJoinAndNoCriticalEdges(t *testing.T) {
	g := build(t, "if c then\n x = 1\nelse\n y = 2\nendif\nz = 3")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if countKind(g, KBranch) != 1 || countKind(g, KJoin) != 1 {
		t.Fatalf("want 1 branch and 1 join:\n%s", g)
	}
	if countKind(g, KPad) != 0 {
		t.Fatalf("two-armed if with single-succ arms needs no pads:\n%s", g)
	}
}

func TestOneArmedIfGetsSyntheticElse(t *testing.T) {
	// Paper §3.3 / Figure 3: the edge branch→join is critical (branch has
	// 2 succs, join has 2 preds), so a pad — the "added else branch" —
	// must appear.
	g := build(t, "if c then\n x = 1\nendif\nz = 3")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if countKind(g, KPad) != 1 {
		t.Fatalf("want exactly 1 pad (synthetic else):\n%s", g)
	}
}

// TestFig12Shape checks that the code of paper Figure 11 lowers to the
// 14-node interval flow graph of Figure 12: entry, i-loop header, assign,
// branch, join-latch, pad(i-exit), j-header, j-body, pad(j-exit),
// pad(jump), anchor 77, k-header, k-body, exit.
func TestFig12Shape(t *testing.T) {
	g := build(t, `
do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 14 {
		t.Fatalf("blocks = %d, want 14:\n%s", len(g.Blocks), g)
	}
	if got := countKind(g, KPad); got != 3 {
		t.Fatalf("pads = %d, want 3 (i-exit, j-exit, jump landing):\n%s", got, g)
	}
	if got := countKind(g, KHeader); got != 3 {
		t.Fatalf("headers = %d, want 3:\n%s", got, g)
	}
	if got := countKind(g, KAnchor); got != 1 {
		t.Fatalf("anchors = %d, want 1:\n%s", got, g)
	}
	// The jump landing pad: a pad whose predecessor is the branch.
	var br *Block
	for _, b := range g.Blocks {
		if b.Kind == KBranch {
			br = b
		}
	}
	if br == nil {
		t.Fatal("no branch")
	}
	foundJumpPad := false
	for _, s := range br.Succs {
		if s.Kind == KPad {
			foundJumpPad = true
			if len(s.Preds) != 1 {
				t.Fatalf("jump pad %v should have a single pred", s)
			}
		}
	}
	if !foundJumpPad {
		t.Fatalf("branch %v should reach the label through a pad: %v", br, br.Succs)
	}
	if !g.Reducible() {
		t.Fatal("graph should be reducible")
	}
	if be := g.BackEdges(); len(be) != 3 {
		t.Fatalf("back edges = %d, want 3", len(be))
	}
}

func TestGotoSkipsDeadCode(t *testing.T) {
	g := build(t, "goto 9\nx = 1\n9 continue\ny = 2")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// x = 1 is unreachable and must be pruned.
	for _, b := range g.Blocks {
		if b.Kind == KStmt {
			if a, ok := b.Stmt.(*ir.Assign); ok {
				if id, ok := a.LHS.(*ir.Ident); ok && id.Name == "x" {
					t.Fatalf("dead assignment not pruned:\n%s", g)
				}
			}
		}
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
do i = 1, n
    do j = 1, n
        x(i) = y(j)
    enddo
enddo
`)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := countKind(g, KHeader); got != 2 {
		t.Fatalf("headers = %d, want 2", got)
	}
	if be := g.BackEdges(); len(be) != 2 {
		t.Fatalf("back edges = %d, want 2", len(be))
	}
	if !g.Reducible() {
		t.Fatal("should be reducible")
	}
}

func TestDominators(t *testing.T) {
	g := build(t, "if c then\n x = 1\nelse\n y = 2\nendif\nz = 3")
	idom := g.Dominators()
	var br, join *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case KBranch:
			br = b
		case KJoin:
			join = b
		}
	}
	if idom[join.ID] != br {
		t.Fatalf("idom(join) = %v, want branch %v", idom[join.ID], br)
	}
	if !Dominates(idom, g.Entry, join) {
		t.Fatal("entry should dominate join")
	}
	if Dominates(idom, join, br) {
		t.Fatal("join should not dominate branch")
	}
}

func TestIrreducibleDetection(t *testing.T) {
	// Hand-built irreducible graph: entry → a, entry → b, a ⇄ b, b → exit.
	g := &Graph{}
	e := g.NewBlock(KEntry)
	a := g.NewBlock(KStmt)
	b := g.NewBlock(KStmt)
	x := g.NewBlock(KExit)
	g.Entry, g.Exit = e, x
	g.AddEdge(e, a)
	g.AddEdge(e, b)
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	g.AddEdge(b, x)
	if g.Reducible() {
		t.Fatal("two-entry cycle must be irreducible")
	}
}

func TestSplitCriticalEdgesIdempotent(t *testing.T) {
	g := build(t, `
if c then
    x = 1
endif
do i = 1, n
    if d then
        y = 2
    endif
enddo
`)
	if n := g.SplitCriticalEdges(); n != 0 {
		t.Fatalf("second split pass found %d critical edges", n)
	}
}

func TestBuildFig1(t *testing.T) {
	g := build(t, `
distributed x(100)
do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := countKind(g, KHeader); got != 4 {
		t.Fatalf("headers = %d, want 4", got)
	}
	if !g.Reducible() {
		t.Fatal("should be reducible")
	}
}
