// Package cfg builds control flow graphs from mini-Fortran programs and
// normalizes them for interval analysis: one node per statement, explicit
// join nodes after IFs, label anchor nodes for GOTO targets, and critical
// edge splitting with synthetic nodes (paper §3.3, [KRS92]).
//
// The resulting graphs satisfy, by construction, the three properties the
// GIVE-N-TAKE interval flow graph requires: reducibility (the frontend
// admits only DO-loop cycles), a unique CYCLE edge per loop (every loop
// body funnels through a single join or latch), and no critical edges.
package cfg

import (
	"fmt"
	"strings"

	"givetake/internal/ir"
)

// Kind classifies CFG nodes.
type Kind int

const (
	// KEntry is the unique program entry node.
	KEntry Kind = iota
	// KExit is the unique program exit node.
	KExit
	// KStmt holds one straight-line statement (assignment, continue, comm).
	KStmt
	// KHeader is a DO-loop header; it evaluates the loop control and has
	// exactly two successors: the body (Succs[0]) and the loop exit
	// (Succs[1]). Fortran DO semantics make this a zero-trip construct.
	KHeader
	// KBranch is an IF condition; Succs[0] is the then side, Succs[1] the
	// else (or join) side.
	KBranch
	// KJoin is the empty merge point after an IF or the latch of a loop.
	KJoin
	// KAnchor marks a numeric label that is the target of a GOTO.
	KAnchor
	// KPad is a synthetic node inserted to break a critical edge; code
	// placed here materializes as a new basic block (e.g. a new else
	// branch or a landing pad for a jump out of a loop, paper §3.3).
	KPad
)

func (k Kind) String() string {
	switch k {
	case KEntry:
		return "entry"
	case KExit:
		return "exit"
	case KStmt:
		return "stmt"
	case KHeader:
		return "header"
	case KBranch:
		return "branch"
	case KJoin:
		return "join"
	case KAnchor:
		return "anchor"
	case KPad:
		return "pad"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Block is a CFG node. With one statement per node, "block" is used in
// the loose flow-graph sense of the paper rather than "maximal basic
// block".
type Block struct {
	ID   int
	Kind Kind

	// Stmt is the statement for KStmt nodes (Assign, Continue, Comm).
	Stmt ir.Stmt
	// Loop is the DO statement for KHeader nodes.
	Loop *ir.Do
	// Cond is the condition for KBranch nodes.
	Cond ir.Expr
	// LabelName is the label for KAnchor nodes.
	LabelName string

	Succs []*Block
	Preds []*Block
}

// Synthetic reports whether the node was invented by normalization (a
// pad); production placed here needs a new basic block at code
// generation time (paper §5.4).
func (b *Block) Synthetic() bool { return b.Kind == KPad }

// SourcePos returns the source position the block maps back to: the
// statement for KStmt, the DO statement for KHeader, the IF condition
// for KBranch. Structural blocks (entry/exit/join/anchor/pad) carry no
// position of their own and return the zero Pos.
func (b *Block) SourcePos() ir.Pos {
	switch b.Kind {
	case KStmt:
		if b.Stmt != nil {
			return b.Stmt.Pos()
		}
	case KHeader:
		if b.Loop != nil {
			return b.Loop.Pos()
		}
	case KBranch:
		if b.Cond != nil {
			return b.Cond.Pos()
		}
	}
	return ir.Pos{}
}

// Anchor renders the canonical source anchor for a block, shared by
// explain output and check diagnostics so both print identical
// references: "line:col" when the block maps back to source, otherwise
// the structural description (e.g. "b7:join").
func Anchor(b *Block) string {
	if b == nil {
		return "-"
	}
	if p := b.SourcePos(); p != (ir.Pos{}) {
		return p.String()
	}
	return b.String()
}

// String renders a compact description, e.g. "b3:stmt y(a(i)) = ...".
func (b *Block) String() string {
	desc := ""
	switch b.Kind {
	case KStmt:
		if b.Stmt != nil {
			desc = " " + strings.TrimRight(ir.StmtsString([]ir.Stmt{b.Stmt}), "\n")
		}
	case KHeader:
		if b.Loop != nil {
			desc = fmt.Sprintf(" do %s = %s, %s", b.Loop.Var, ir.ExprString(b.Loop.Lo), ir.ExprString(b.Loop.Hi))
		}
	case KBranch:
		desc = " if " + ir.ExprString(b.Cond)
	case KAnchor:
		desc = " " + b.LabelName
	}
	return fmt.Sprintf("b%d:%s%s", b.ID, b.Kind, desc)
}

// Graph is a control flow graph.
type Graph struct {
	Prog   *ir.Program
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	// AST associations recorded by Build, used by annotators that map
	// dataflow results back onto source positions.
	StmtBlock  map[ir.Stmt]*Block
	LoopHeader map[*ir.Do]*Block
	IfBranch   map[*ir.If]*Block
	IfJoin     map[*ir.If]*Block
}

// NewBlock appends a fresh block of the given kind.
func (g *Graph) NewBlock(k Kind) *Block {
	b := &Block{ID: len(g.Blocks), Kind: k}
	g.Blocks = append(g.Blocks, b)
	return b
}

// AddEdge appends the edge from → to, keeping successor order meaningful
// (first edge added is Succs[0]).
func (g *Graph) AddEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// RemoveEdge deletes the edge from → to; it must exist.
func (g *Graph) RemoveEdge(from, to *Block) {
	if !removeFrom(&from.Succs, to) || !removeFrom(&to.Preds, from) {
		panic(fmt.Sprintf("cfg: RemoveEdge(%v, %v): edge not present", from, to))
	}
}

func removeFrom(list *[]*Block, b *Block) bool {
	for i, x := range *list {
		if x == b {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return true
		}
	}
	return false
}

// replaceSucc swaps to for repl in from.Succs, preserving position.
func replaceSucc(from, to, repl *Block) {
	for i, s := range from.Succs {
		if s == to {
			from.Succs[i] = repl
			return
		}
	}
	panic("cfg: replaceSucc: successor not found")
}

// replacePred swaps from for repl in to.Preds, preserving position.
func replacePred(to, from, repl *Block) {
	for i, p := range to.Preds {
		if p == from {
			to.Preds[i] = repl
			return
		}
	}
	panic("cfg: replacePred: predecessor not found")
}

// SplitEdge inserts a synthetic pad on the edge from → to and returns it.
func (g *Graph) SplitEdge(from, to *Block) *Block {
	pad := g.NewBlock(KPad)
	replaceSucc(from, to, pad)
	replacePred(to, from, pad)
	pad.Preds = []*Block{from}
	pad.Succs = []*Block{to}
	return pad
}

// SplitCriticalEdges breaks every edge whose source has multiple
// successors and whose sink has multiple predecessors by inserting a KPad
// node, and returns the number of pads inserted. This is required by the
// interval flow graph (paper §3.3): a critical edge marks a location
// where production cannot be placed without affecting unrelated paths.
func (g *Graph) SplitCriticalEdges() int {
	n := 0
	// Iterate over a snapshot: pads themselves are never critical sources.
	blocks := append([]*Block(nil), g.Blocks...)
	for _, b := range blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for i := 0; i < len(b.Succs); i++ {
			s := b.Succs[i]
			if len(s.Preds) >= 2 {
				g.SplitEdge(b, s)
				n++
			}
		}
	}
	return n
}

// Compact removes blocks unreachable from Entry and renumbers IDs.
func (g *Graph) Compact() {
	reach := map[*Block]bool{}
	var stack []*Block
	push := func(b *Block) {
		if b != nil && !reach[b] {
			reach[b] = true
			stack = append(stack, b)
		}
	}
	push(g.Entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			push(s)
		}
	}
	var kept []*Block
	for _, b := range g.Blocks {
		if reach[b] {
			b.ID = len(kept)
			kept = append(kept, b)
			// drop edges from unreachable preds
			var preds []*Block
			for _, p := range b.Preds {
				if reach[p] {
					preds = append(preds, p)
				}
			}
			b.Preds = preds
		}
	}
	g.Blocks = kept
}

// Validate checks structural invariants (edge symmetry, single entry/exit,
// no critical edges) and returns a descriptive error if any fails.
func (g *Graph) Validate() error {
	if g.Entry == nil || g.Exit == nil {
		return fmt.Errorf("cfg: missing entry or exit")
	}
	if len(g.Entry.Preds) != 0 {
		return fmt.Errorf("cfg: entry %v has predecessors", g.Entry)
	}
	if len(g.Exit.Succs) != 0 {
		return fmt.Errorf("cfg: exit %v has successors", g.Exit)
	}
	index := map[*Block]bool{}
	for _, b := range g.Blocks {
		index[b] = true
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				return fmt.Errorf("cfg: %v has successor outside graph", b)
			}
			if !contains(s.Preds, b) {
				return fmt.Errorf("cfg: edge %v -> %v missing pred link", b, s)
			}
			if len(b.Succs) >= 2 && len(s.Preds) >= 2 {
				return fmt.Errorf("cfg: critical edge %v -> %v", b, s)
			}
		}
		for _, p := range b.Preds {
			if !contains(p.Succs, b) {
				return fmt.Errorf("cfg: edge %v -> %v missing succ link", p, b)
			}
		}
	}
	return nil
}

func contains(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// String renders the graph one node per line, for tests and debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%v ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.ID)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
