package cfg

import (
	"fmt"

	"givetake/internal/ir"
)

// Build lowers a checked program to a normalized CFG: it creates the
// entry/exit nodes, one node per statement, branch/join nodes for IFs,
// header nodes for DO loops (test-at-header, zero-trip semantics), anchor
// nodes for GOTO labels, then prunes unreachable code and splits critical
// edges. The result satisfies Graph.Validate.
func Build(prog *ir.Program) (*Graph, error) {
	b := &builder{
		g: &Graph{
			Prog:       prog,
			StmtBlock:  map[ir.Stmt]*Block{},
			LoopHeader: map[*ir.Do]*Block{},
			IfBranch:   map[*ir.If]*Block{},
			IfJoin:     map[*ir.If]*Block{},
		},
		anchors: map[string]*Block{},
	}
	b.g.Entry = b.g.NewBlock(KEntry)
	cur := b.lower(prog.Body, b.g.Entry)
	b.g.Exit = b.g.NewBlock(KExit)
	if cur != nil {
		b.g.AddEdge(cur, b.g.Exit)
	}
	if b.err != nil {
		return nil, b.err
	}
	// An anchor whose labeled statement was unreachable straight-line code
	// still flows onward; any anchor left without successors (label at
	// program end) flows to exit.
	for _, a := range b.anchors {
		if len(a.Succs) == 0 {
			b.g.AddEdge(a, b.g.Exit)
		}
	}
	b.g.Compact()
	b.g.SplitCriticalEdges()
	b.g.Compact()
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

type builder struct {
	g       *Graph
	anchors map[string]*Block
	err     error
}

// addEdgeUnique adds from → to unless that edge already exists; merges
// into joins and anchors are semantically single edges even when several
// source-level constructs produce them (e.g. two empty IF arms).
func (b *builder) addEdgeUnique(from, to *Block) {
	if !contains(from.Succs, to) {
		b.g.AddEdge(from, to)
	}
}

func (b *builder) anchor(label string) *Block {
	if a, ok := b.anchors[label]; ok {
		return a
	}
	a := b.g.NewBlock(KAnchor)
	a.LabelName = label
	b.anchors[label] = a
	return a
}

// lower appends the CFG for stmts after cur and returns the node the
// following code should attach to, or nil if control never falls through
// (the list ended in an unconditional GOTO).
func (b *builder) lower(stmts []ir.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		// A labeled statement that is a GOTO target starts at its anchor.
		if l := s.Label(); l != "" {
			a := b.anchor(l)
			if cur != nil {
				b.g.AddEdge(cur, a)
			}
			cur = a
		}
		if cur == nil {
			// unreachable straight-line code after a goto; checked programs
			// only reach here for genuinely dead statements, which we skip
			// (Compact would drop their nodes anyway).
			continue
		}
		switch s := s.(type) {
		case *ir.Assign, *ir.Continue, *ir.Comm:
			n := b.g.NewBlock(KStmt)
			n.Stmt = s
			b.g.StmtBlock[s] = n
			b.g.AddEdge(cur, n)
			cur = n
		case *ir.Goto:
			b.addEdgeUnique(cur, b.anchor(s.Target))
			cur = nil
		case *ir.Do:
			h := b.g.NewBlock(KHeader)
			h.Loop = s
			b.g.LoopHeader[s] = h
			b.g.AddEdge(cur, h)
			// Succs[0] = body entry.
			bodyEnd := b.lower(s.Body, h)
			if len(h.Succs) == 0 {
				// Empty body: materialize it as a continue node so the
				// loop still has a unique interval member and CYCLE edge.
				n := b.g.NewBlock(KStmt)
				c := &ir.Continue{}
				n.Stmt = c
				b.g.AddEdge(h, n)
				bodyEnd = n
			}
			if bodyEnd != nil {
				b.g.AddEdge(bodyEnd, h) // the CYCLE edge
			}
			// Succs[last] = loop exit; taken when the trip count is zero
			// or exhausted.
			cur = h
		case *ir.If:
			br := b.g.NewBlock(KBranch)
			br.Cond = s.Cond
			b.g.IfBranch[s] = br
			b.g.AddEdge(cur, br)
			join := b.g.NewBlock(KJoin)
			b.g.IfJoin[s] = join
			thenEnd := b.lower(s.Then, br)
			if thenEnd == br {
				// empty then arm: explicit fall-through edge
				b.addEdgeUnique(br, join)
			} else if thenEnd != nil {
				b.addEdgeUnique(thenEnd, join)
			}
			elseEnd := b.lower(s.Else, br)
			if elseEnd == br {
				b.addEdgeUnique(br, join)
			} else if elseEnd != nil {
				b.addEdgeUnique(elseEnd, join)
			}
			if len(join.Preds) == 0 {
				// both arms jumped away: nothing falls through
				cur = nil
				continue
			}
			cur = join
		default:
			if b.err == nil {
				b.err = fmt.Errorf("cfg: cannot lower %T", s)
			}
			return cur
		}
	}
	return cur
}
