package cfg

// Dominators computes the immediate-dominator relation with the
// Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm"). It returns idom indexed by Block.ID; idom[entry] = entry,
// and idom[b] = nil for blocks unreachable from entry.
func (g *Graph) Dominators() []*Block {
	rpo := g.ReversePostorder()
	pos := make([]int, len(g.Blocks))
	for i, b := range rpo {
		pos[b.ID] = i
	}
	idom := make([]*Block, len(g.Blocks))
	idom[g.Entry.ID] = g.Entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for pos[a.ID] > pos[b.ID] {
				a = idom[a.ID]
			}
			for pos[b.ID] > pos[a.ID] {
				b = idom[b.ID]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.ID] == nil {
					continue // p not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom relation
// returned by Dominators (every node dominates itself).
func Dominates(idom []*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b.ID]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder of a DFS following successor edges.
func (g *Graph) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// BackEdges returns the edges (m, h) where h dominates m — the loop back
// edges of a reducible graph.
func (g *Graph) BackEdges() [][2]*Block {
	idom := g.Dominators()
	var out [][2]*Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if Dominates(idom, s, b) {
				out = append(out, [2]*Block{b, s})
			}
		}
	}
	return out
}

// Reducible reports whether the graph is reducible: removing all back
// edges (sink dominates source) must leave an acyclic graph. Programs
// accepted by the frontend are reducible by construction; hand-built
// graphs may not be.
func (g *Graph) Reducible() bool {
	idom := g.Dominators()
	// Kahn's algorithm on the forward (non-back) edges.
	indeg := make([]int, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !Dominates(idom, s, b) {
				indeg[s.ID]++
			}
		}
	}
	var queue []*Block
	for _, b := range g.Blocks {
		if indeg[b.ID] == 0 {
			queue = append(queue, b)
		}
	}
	removed := 0
	for len(queue) > 0 {
		b := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, s := range b.Succs {
			if !Dominates(idom, s, b) {
				if indeg[s.ID]--; indeg[s.ID] == 0 {
					queue = append(queue, s)
				}
			}
		}
	}
	return removed == len(g.Blocks)
}
