package main

import (
	"strings"
	"testing"

	"givetake/internal/telemetry"
)

const doc = `# HELP gnt_http_requests_total Requests.
# TYPE gnt_http_requests_total counter
gnt_http_requests_total{route="/analyze",status="200"} 7
gnt_http_requests_total{route="/analyze",status="429"} 2
# TYPE gnt_ready gauge
gnt_ready 1
# TYPE gnt_stage_duration_seconds histogram
gnt_stage_duration_seconds_bucket{stage="cfg-build",le="0.1"} 3
gnt_stage_duration_seconds_bucket{stage="cfg-build",le="+Inf"} 3
gnt_stage_duration_seconds_sum{stage="cfg-build"} 0.05
gnt_stage_duration_seconds_count{stage="cfg-build"} 3
`

func parsed(t *testing.T) telemetry.Families {
	t.Helper()
	fams, err := telemetry.ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

func TestCheckRequire(t *testing.T) {
	fams := parsed(t)
	for _, ok := range []string{
		"gnt_http_requests_total",
		"gnt_http_requests_total=counter",
		"gnt_ready=gauge",
		"gnt_stage_duration_seconds=histogram",
	} {
		if err := checkRequire(fams, ok); err != nil {
			t.Errorf("require %q: unexpected %v", ok, err)
		}
	}
	for _, bad := range []string{
		"gnt_missing_family",
		"gnt_ready=counter",
	} {
		if err := checkRequire(fams, bad); err == nil {
			t.Errorf("require %q: want error", bad)
		}
	}
}

func TestCheckMin(t *testing.T) {
	fams := parsed(t)
	for _, ok := range []string{
		"gnt_http_requests_total=9", // summed across label values
		"gnt_ready=1",
		"gnt_stage_duration_seconds=3", // histogram: its _count series
	} {
		if err := checkMin(fams, ok); err != nil {
			t.Errorf("min %q: unexpected %v", ok, err)
		}
	}
	for _, bad := range []string{
		"gnt_http_requests_total=10",
		"gnt_stage_duration_seconds=4",
		"gnt_http_requests_total", // malformed spec
		"gnt_ready=notanumber",
	} {
		if err := checkMin(fams, bad); err == nil {
			t.Errorf("min %q: want error", bad)
		}
	}
}
