// Command promcheck strictly validates a Prometheus text exposition.
// It reads a document from stdin (or -in file), runs it through the
// same strict parser the telemetry unit tests and the chaos soak use,
// and fails on anything a lenient scraper would shrug off: duplicate
// or re-opened families, interleaved blocks, duplicate series, bad
// escapes, timestamps.
//
// Usage:
//
//	curl -s localhost:8075/metrics | promcheck \
//	    -require gnt_http_requests_total \
//	    -require gnt_stage_duration_seconds=histogram \
//	    -min 'gnt_http_requests_total=1'
//
// Each -require names a family that must be present with at least one
// sample; an optional =type also pins its TYPE. Each -min asserts that
// the family's samples (label-summed; histograms use their _count
// series) total at least the given value. CI's telemetry smoke job
// scrapes a live server through this tool, so the /metrics endpoint is
// held to the strict grammar on every push.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"givetake/internal/telemetry"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var require, min multiFlag
	in := flag.String("in", "-", "exposition file (\"-\" for stdin)")
	list := flag.Bool("list", false, "print the parsed families and sample counts")
	flag.Var(&require, "require", "family that must be present (repeatable; name or name=type)")
	flag.Var(&min, "min", "family whose label-summed value must be >= N, as name=N (repeatable)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r = f
	}
	fams, err := telemetry.ParseExposition(r)
	if err != nil {
		fail("exposition rejected: %v", err)
	}
	if *list {
		names := make([]string, 0, len(fams))
		for name := range fams {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f := fams[name]
			fmt.Printf("%s %s %d\n", f.Name, f.Type, len(f.Samples))
		}
	}
	bad := 0
	for _, req := range require {
		if err := checkRequire(fams, req); err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			bad++
		}
	}
	for _, m := range min {
		if err := checkMin(fams, m); err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// checkRequire asserts the family named by req ("name" or "name=type")
// is present with at least one sample.
func checkRequire(fams telemetry.Families, req string) error {
	name, typ, hasType := strings.Cut(req, "=")
	f, ok := fams[name]
	if !ok {
		return fmt.Errorf("required family %q is missing", name)
	}
	if hasType && f.Type != typ {
		return fmt.Errorf("family %q has type %q, want %q", name, f.Type, typ)
	}
	if len(f.Samples) == 0 {
		return fmt.Errorf("required family %q has no samples", name)
	}
	return nil
}

// checkMin asserts the family's label-summed value is at least N.
// Histogram families are summed over their _count series, so the
// threshold reads as "at least N observations".
func checkMin(fams telemetry.Families, spec string) error {
	name, val, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -min %q, want name=N", spec)
	}
	want, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad -min threshold %q: %v", val, err)
	}
	sample := name
	if f, present := fams[name]; present && f.Type == "histogram" {
		sample = name + "_count"
	}
	got := fams.Sum(sample, nil)
	if got < want {
		return fmt.Errorf("%s = %v, want >= %v", sample, got, want)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
