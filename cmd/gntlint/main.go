// Command gntlint machine-checks this repository's concurrency and
// resource invariants: the conventions that were previously enforced
// only by review — arena lease/release pairing, context polls in
// unbounded loops, no time.After in loops, stats mutated under their
// lock, goroutine errors routed somewhere, canonical obs names — each
// traceable to a real historical bug or a documented contract.
//
// Usage:
//
//	gntlint [-json] [-tests] [-c analyzer[,analyzer]] [packages]
//	gntlint -list
//
// Packages default to ./... resolved against the enclosing module.
// The driver loads and type-checks offline with the standard library
// only; no module downloads, no binaries beyond the go toolchain.
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
//
// A finding is suppressed with an in-source directive carrying a
// mandatory reason:
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or alone on the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"givetake/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gntlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON  = fs.Bool("json", false, "emit findings as a JSON array")
		list    = fs.Bool("list", false, "print the analyzer catalog and exit")
		tests   = fs.Bool("tests", false, "also analyze in-package _test.go files")
		checks  = fs.String("c", "", "comma-separated analyzers to run (default: all)")
		workDir = fs.String("dir", ".", "directory whose module anchors package resolution")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gntlint [flags] [packages]\n\nAnalyzers check the repository's own concurrency and resource invariants;\nsee gntlint -list for the catalog.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	analyzers := lint.All()
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "gntlint: unknown analyzer %q (see gntlint -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	findings, err := lint.Run(lint.Config{
		Dir:          *workDir,
		Analyzers:    analyzers,
		IncludeTests: *tests,
	}, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "gntlint: %v\n", err)
		return 2
	}

	if *asJSON {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: relPath(f.Pos.Filename), Line: f.Pos.Line, Column: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "gntlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// relPath shortens absolute finding paths relative to the working
// directory when that makes them shorter — the shape CI logs and
// editors expect.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}
