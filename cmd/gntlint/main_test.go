package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListCatalog pins the -list output: one line per analyzer, name
// first, followed by a one-line doc.
func TestListCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("gntlint -list exited %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := []string{"arenarelease", "ctxpoll", "errdrop", "obsnames", "statslock", "timerleak"}
	if len(lines) != len(want) {
		t.Fatalf("want %d catalog lines, got %d:\n%s", len(want), len(lines), out.String())
	}
	for i, name := range want {
		fields := strings.Fields(lines[i])
		if len(fields) < 2 || fields[0] != name {
			t.Errorf("catalog line %d: want %q plus a doc line, got %q", i, name, lines[i])
		}
	}
}

// TestSelfClean is the CI gate in test form: the repository's own code
// must produce zero findings.
func TestSelfClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("gntlint is not self-clean (exit %d):\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run must print nothing, got:\n%s", out.String())
	}
}

// TestFindingsExitAndJSON drives a deliberately leaky fixture through
// the CLI: text mode exits 1 with file:line findings, JSON mode emits
// a machine-readable array.
func TestFindingsExitAndJSON(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func f(n int) {
	for i := 0; i < n; i++ {
		<-time.After(time.Microsecond)
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "leaky.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{"-dir", "../..", dir}, &out, &errb)
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "leaky.go:7") || !strings.Contains(out.String(), "timerleak") {
		t.Fatalf("finding output missing file:line or analyzer:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-json", "-dir", "../..", dir}, &out, &errb)
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d: %s", code, errb.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "timerleak" || findings[0].Line != 7 {
		t.Fatalf("unexpected JSON findings: %+v", findings)
	}
}

// TestAnalyzerSelection covers -c: selecting a quiet analyzer over a
// leaky fixture finds nothing; an unknown name is a usage error.
func TestAnalyzerSelection(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func f(n int) {
	for i := 0; i < n; i++ {
		<-time.After(time.Microsecond)
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "leaky.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-c", "errdrop", "-dir", "../..", dir}, &out, &errb); code != 0 {
		t.Fatalf("errdrop alone must not flag a timer leak; exit %d: %s", code, out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-c", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer must exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "nosuch") {
		t.Fatalf("usage error must name the bad analyzer: %s", errb.String())
	}
}

// TestLoadErrorExit pins exit 2 on unparseable input.
func TestLoadErrorExit(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package p\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", "../..", dir}, &out, &errb); code != 2 {
		t.Fatalf("want exit 2 on load failure, got %d: %s", code, out.String())
	}
	if errb.Len() == 0 {
		t.Fatal("load failure must be reported on stderr")
	}
}
