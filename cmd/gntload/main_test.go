package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"givetake/internal/serve"
)

// fakeNode answers /analyze like a serve node: 200 with a canned
// annotated payload, a configurable slice of 5xx, and an X-Gnt-Cache
// header that flips to hit after the first sight of a body.
func fakeNode(t *testing.T, annotated string, everyNth5xx int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var reqs atomic.Int64
	var mu sync.Mutex // guards cached
	cached := map[string]bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := reqs.Add(1)
		if everyNth5xx > 0 && n%everyNth5xx == 0 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var r serve.Request
		_ = json.NewDecoder(req.Body).Decode(&r)
		mu.Lock()
		hit := cached[r.Source]
		cached[r.Source] = true
		mu.Unlock()
		cache := "miss"
		if hit {
			cache = "hit"
		}
		w.Header().Set("X-Gnt-Cache", cache)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(serve.Response{OK: true, Rung: 1, Annotated: annotated})
	}))
	t.Cleanup(ts.Close)
	return ts, &reqs
}

// TestRunProducesSummary drives a short open-loop run and checks the
// summary's accounting: statuses, cache split, rates, histogram.
func TestRunProducesSummary(t *testing.T) {
	ts, reqs := fakeNode(t, "annotated", 0)
	var out, errb bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-rate", "400", "-duration", "300ms",
		"-keys", "4", "-seed", "7",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr %s)", err, errb.String())
	}
	var sum Summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, out.String())
	}
	if sum.Requests == 0 || int64(sum.Requests) != reqs.Load() {
		t.Fatalf("summary requests = %d, server saw %d", sum.Requests, reqs.Load())
	}
	if sum.ByStatus["200"] != sum.Requests {
		t.Fatalf("by_status = %v, want all %d under 200", sum.ByStatus, sum.Requests)
	}
	// zipf over 4 keys: the first few are repeats, so hits dominate
	if sum.ByCache["hit"] == 0 || sum.ByCache["hit"]+sum.ByCache["miss"] != sum.Requests {
		t.Fatalf("by_cache = %v inconsistent with %d requests", sum.ByCache, sum.Requests)
	}
	if sum.FiveXX != 0 || sum.TransportErrors != 0 {
		t.Fatalf("clean run reported five_xx=%d transport=%d", sum.FiveXX, sum.TransportErrors)
	}
	if sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max == 0 {
		t.Fatalf("latency summary inconsistent: %+v", sum.Latency)
	}
	last := sum.Histogram[len(sum.Histogram)-1]
	if last.Count != sum.Requests {
		t.Fatalf("histogram tail count = %d, want %d", last.Count, sum.Requests)
	}
}

// TestAssertNo5xx: the flag must turn observed 5xx into a nonzero
// exit while still printing the summary.
func TestAssertNo5xx(t *testing.T) {
	ts, _ := fakeNode(t, "annotated", 2) // every 2nd answer is a 500
	var out, errb bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-rate", "200", "-duration", "200ms", "-assert-no-5xx",
	}, &out, &errb)
	if err == nil {
		t.Fatal("run with 5xx responses and -assert-no-5xx must fail")
	}
	var sum Summary
	if jerr := json.Unmarshal(out.Bytes(), &sum); jerr != nil {
		t.Fatalf("summary must still be printed: %v", jerr)
	}
	if sum.FiveXX == 0 {
		t.Fatal("summary must count the 5xx answers")
	}
}

// TestVerifyAgainst pins the byte-identity check: identical payloads
// pass, a diverging annotated program fails before any load is sent.
func TestVerifyAgainst(t *testing.T) {
	a, _ := fakeNode(t, "same", 0)
	b, _ := fakeNode(t, "same", 0)
	var out, errb bytes.Buffer
	if err := run([]string{
		"-url", a.URL, "-verify-against", b.URL,
		"-rate", "100", "-duration", "50ms", "-keys", "3",
	}, &out, &errb); err != nil {
		t.Fatalf("identical nodes must verify: %v", err)
	}
	if !strings.Contains(errb.String(), "verified 3 programs") {
		t.Fatalf("stderr missing verification note: %s", errb.String())
	}

	c, _ := fakeNode(t, "different", 0)
	out.Reset()
	if err := run([]string{
		"-url", a.URL, "-verify-against", c.URL,
		"-rate", "100", "-duration", "50ms", "-keys", "2",
	}, &out, &errb); err == nil {
		t.Fatal("diverging annotated payloads must fail verification")
	}
}

// TestFlagValidation covers the rejects.
func TestFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-rate", "0"}, &out, &errb); err == nil {
		t.Fatal("-rate 0 must be rejected")
	}
	if err := run([]string{"-zipf-s", "1"}, &out, &errb); err == nil {
		t.Fatal("-zipf-s 1 must be rejected")
	}
	if err := run([]string{"-corpus", t.TempDir()}, &out, &errb); err == nil {
		t.Fatal("empty corpus dir must be rejected")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	lat, hist := summarize(nil)
	if lat.Max != 0 || len(hist) == 0 {
		t.Fatalf("empty summarize = %+v %v", lat, hist)
	}
}
