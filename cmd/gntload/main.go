// Command gntload is an open-loop load generator for gnt serve nodes
// and the cluster router: it fires analysis requests at a fixed
// arrival rate (never waiting for responses — the loop every closed
// client gets wrong under saturation), draws keys from a zipf
// distribution over a program corpus so the cache sees realistic skew,
// and prints a JSON summary: latency quantiles and histogram, per-
// status and per-X-Gnt-Cache breakdowns, and transport errors.
//
// Usage:
//
//	gntload [flags]
//
//	-url URL           target base URL (default http://127.0.0.1:8075)
//	-rate R            arrival rate in requests/second (default 50)
//	-duration D        how long to generate load (default 5s)
//	-timeout D         per-request timeout (default 10s)
//	-corpus DIR        directory of *.f programs to draw from
//	-keys N            synthetic corpus size when no -corpus (default 64)
//	-zipf-s S          zipf skew exponent s > 1 (default 1.2)
//	-seed N            key-sequence seed (default 1)
//	-assert-no-5xx     exit nonzero if any 5xx was observed
//	-verify-against U  before the run, POST every corpus entry to both URLs
//	                   and require identical analysis payloads
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"givetake/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gntload:", err)
		os.Exit(1)
	}
}

type options struct {
	url           string
	rate          float64
	duration      time.Duration
	timeout       time.Duration
	corpusDir     string
	keys          int
	zipfS         float64
	seed          int64
	assertNo5xx   bool
	verifyAgainst string
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gntload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.url, "url", "http://127.0.0.1:8075", "target base URL")
	fs.Float64Var(&o.rate, "rate", 50, "arrival rate in requests/second")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "load duration")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-request timeout")
	fs.StringVar(&o.corpusDir, "corpus", "", "directory of *.f programs (empty: synthetic corpus)")
	fs.IntVar(&o.keys, "keys", 64, "synthetic corpus size when no -corpus")
	fs.Float64Var(&o.zipfS, "zipf-s", 1.2, "zipf skew exponent (s > 1)")
	fs.Int64Var(&o.seed, "seed", 1, "key-sequence seed")
	fs.BoolVar(&o.assertNo5xx, "assert-no-5xx", false, "exit nonzero if any 5xx was observed")
	fs.StringVar(&o.verifyAgainst, "verify-against", "", "reference URL that must produce identical analysis payloads")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.rate <= 0 {
		return errors.New("-rate must be positive")
	}
	if o.zipfS <= 1 {
		return errors.New("-zipf-s must be > 1")
	}

	corpus, err := loadCorpus(o.corpusDir, o.keys)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: o.timeout}
	if o.verifyAgainst != "" {
		if err := verifyCorpus(client, o.url, o.verifyAgainst, corpus, stderr); err != nil {
			return err
		}
	}

	sum := generate(context.Background(), client, o, corpus)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}
	if o.assertNo5xx && sum.FiveXX > 0 {
		return fmt.Errorf("assertion failed: %d responses were 5xx", sum.FiveXX)
	}
	return nil
}

// loadCorpus reads *.f files from dir, or synthesizes n distinct
// programs (the base exemplar plus a growing tail of blank lines — the
// same program semantically, a distinct cache key each).
func loadCorpus(dir string, n int) ([]string, error) {
	if dir == "" {
		if n <= 0 {
			n = 1
		}
		out := make([]string, n)
		for i := range out {
			out[i] = baseProgram + strings.Repeat("\n", i)
		}
		return out, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.f"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.f programs under %s", dir)
	}
	sort.Strings(paths)
	out := make([]string, 0, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, string(b))
	}
	return out, nil
}

const baseProgram = `distributed x(1000)
real y(1000)

do i = 1, n
    y(i) = x(i) + 1
enddo
`

// Summary is gntload's JSON report.
type Summary struct {
	Target     string  `json:"target"`
	RateTarget float64 `json:"rate_target"`
	DurationS  float64 `json:"duration_s"`
	Corpus     int     `json:"corpus"`

	Requests        int            `json:"requests"`
	AchievedRate    float64        `json:"achieved_rate"`
	ByStatus        map[string]int `json:"by_status"`
	ByCache         map[string]int `json:"by_cache"`
	TransportErrors int            `json:"transport_errors"`
	FiveXX          int            `json:"five_xx"`

	Latency   LatencySummary `json:"latency_ms"`
	Histogram []Bucket       `json:"histogram"`
}

// LatencySummary holds the response-time quantiles in milliseconds.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Bucket is one cumulative latency-histogram cell.
type Bucket struct {
	LeMS  float64 `json:"le_ms"`
	Count int     `json:"count"`
}

// histogramBounds are the cumulative bucket upper bounds in ms.
var histogramBounds = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// collector accumulates per-request outcomes from the worker
// goroutines.
type collector struct {
	mu        sync.Mutex // guards lats, byStatus, byCache, transport, fiveXX
	lats      []time.Duration
	byStatus  map[string]int
	byCache   map[string]int
	transport int
	fiveXX    int
}

func newCollector() *collector {
	return &collector{byStatus: map[string]int{}, byCache: map[string]int{}}
}

func (c *collector) noteError() {
	c.mu.Lock()
	c.transport++
	c.mu.Unlock()
}

func (c *collector) note(status int, cache string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lats = append(c.lats, d)
	c.byStatus[fmt.Sprintf("%d", status)]++
	if cache == "" {
		cache = "none"
	}
	c.byCache[cache]++
	if status >= 500 {
		c.fiveXX++
	}
}

// generate runs the open loop: one request is launched at every tick of
// the arrival clock whether or not earlier ones have answered, so a
// saturated target sees the true arrival rate instead of a politely
// self-throttling client.
func generate(ctx context.Context, client *http.Client, o options, corpus []string) *Summary {
	rng := rand.New(rand.NewSource(o.seed))
	zipf := rand.NewZipf(rng, o.zipfS, 1, uint64(len(corpus)-1))

	col := newCollector()
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / o.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.NewTimer(o.duration)
	defer deadline.Stop()

	start := time.Now()
	launched := 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-tick.C:
			src := corpus[zipf.Uint64()]
			launched++
			wg.Add(1)
			go func() {
				defer wg.Done()
				shoot(client, o.url, src, col)
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	sum := &Summary{
		Target:     o.url,
		RateTarget: o.rate,
		DurationS:  elapsed.Seconds(),
		Corpus:     len(corpus),

		Requests:        launched,
		ByStatus:        col.byStatus,
		ByCache:         col.byCache,
		TransportErrors: col.transport,
		FiveXX:          col.fiveXX,
	}
	if elapsed > 0 {
		sum.AchievedRate = float64(launched) / elapsed.Seconds()
	}
	sum.Latency, sum.Histogram = summarize(col.lats)
	return sum
}

// shoot fires one request and records its outcome.
func shoot(client *http.Client, url, src string, col *collector) {
	b, err := json.Marshal(serve.Request{Source: src})
	if err != nil {
		col.noteError()
		return
	}
	start := time.Now()
	resp, err := client.Post(url+"/analyze", "application/json", bytes.NewReader(b))
	if err != nil {
		col.noteError()
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	col.note(resp.StatusCode, resp.Header.Get("X-Gnt-Cache"), time.Since(start))
}

// summarize turns raw latencies into quantiles plus the cumulative
// histogram.
func summarize(lats []time.Duration) (LatencySummary, []Bucket) {
	buckets := make([]Bucket, len(histogramBounds))
	for i, b := range histogramBounds {
		buckets[i].LeMS = b
	}
	if len(lats) == 0 {
		return LatencySummary{}, buckets
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	q := func(p int) float64 { return ms(lats[(len(lats)-1)*p/100]) }
	var total time.Duration
	for _, d := range lats {
		total += d
		for i, b := range histogramBounds {
			if ms(d) <= b {
				buckets[i].Count++
			}
		}
	}
	return LatencySummary{
		Mean: ms(total) / float64(len(lats)),
		P50:  q(50),
		P90:  q(90),
		P99:  q(99),
		Max:  ms(lats[len(lats)-1]),
	}, buckets
}

// verifyCorpus posts every corpus program to both URLs and requires
// identical analysis payloads: ok, rung, and the annotated program
// byte-for-byte. (Whole-body comparison would trip over timing fields;
// the annotated text IS the answer.)
func verifyCorpus(client *http.Client, url, refURL string, corpus []string, stderr io.Writer) error {
	for i, src := range corpus {
		got, err := fetchPayload(client, url, src)
		if err != nil {
			return fmt.Errorf("verify: target %s program %d: %w", url, i, err)
		}
		want, err := fetchPayload(client, refURL, src)
		if err != nil {
			return fmt.Errorf("verify: reference %s program %d: %w", refURL, i, err)
		}
		if got != want {
			return fmt.Errorf("verify: program %d differs between %s and %s:\n--- target\n%s\n--- reference\n%s",
				i, url, refURL, got, want)
		}
	}
	fmt.Fprintf(stderr, "gntload: verified %d programs identical on %s and %s\n", len(corpus), url, refURL)
	return nil
}

// fetchPayload extracts the comparable slice of one analysis response.
func fetchPayload(client *http.Client, url, src string) (string, error) {
	b, err := json.Marshal(serve.Request{Source: src})
	if err != nil {
		return "", err
	}
	resp, err := client.Post(url+"/analyze", "application/json", bytes.NewReader(b))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var r serve.Response
	if err := json.Unmarshal(body, &r); err != nil {
		return "", err
	}
	return fmt.Sprintf("ok=%t rung=%d\n%s", r.OK, r.Rung, r.Annotated), nil
}
