package main

import (
	"strings"
	"testing"
)

const fig1 = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

func runCLI(t *testing.T, args []string, stdin string) string {
	t.Helper()
	var out, errOut strings.Builder
	if err := run(args, strings.NewReader(stdin), &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s\nstderr:\n%s", args, err, out.String(), errOut.String())
	}
	return out.String()
}

// runCLIErr drives the CLI expecting failure or diagnostics; it returns
// stdout, stderr, and the error.
func runCLIErr(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errOut strings.Builder
	err := run(args, strings.NewReader(stdin), &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestCommModeDefault(t *testing.T) {
	out := runCLI(t, nil, fig1)
	if !strings.Contains(out, "READ_Send{x(a(1:n))}") {
		t.Fatalf("missing vectorized send:\n%s", out)
	}
	if strings.Count(out, "READ_Recv") != 2 {
		t.Fatalf("want two receives:\n%s", out)
	}
}

func TestCommModeAtomic(t *testing.T) {
	out := runCLI(t, []string{"-atomic"}, fig1)
	if strings.Contains(out, "READ_Send") {
		t.Fatalf("atomic mode should not split:\n%s", out)
	}
	if strings.Count(out, "READ{") != 2 {
		t.Fatalf("want two atomic reads:\n%s", out)
	}
}

func TestGraphMode(t *testing.T) {
	out := runCLI(t, []string{"-mode", "graph"}, fig1)
	for _, want := range []string{"header do i", "header do k", "entry", "exit", "E", "C"} {
		if !strings.Contains(out, want) {
			t.Fatalf("graph output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpMode(t *testing.T) {
	out := runCLI(t, []string{"-mode", "dump"}, fig1)
	for _, want := range []string{"universe:", "x(a(1:n))", "TAKEN_in", "RES_in/eager"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestPREMode(t *testing.T) {
	out := runCLI(t, []string{"-mode", "pre"}, "do i = 1, n\n x(i) = b + c\nenddo\n")
	for _, want := range []string{"b + c", "LCM", "Morel-Renvoise", "GIVE-N-TAKE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pre output missing %q:\n%s", want, out)
		}
	}
}

func TestPrefetchMode(t *testing.T) {
	out := runCLI(t, []string{"-mode", "prefetch"}, "real u(100)\ndo i = 1, n\n s = u(5)\nenddo\n")
	if !strings.Contains(out, "PREFETCH_Send{u(5)}") {
		t.Fatalf("prefetch output missing issue:\n%s", out)
	}
}

func TestRunMode(t *testing.T) {
	out := runCLI(t, []string{"-mode", "run", "-n", "50"}, fig1)
	for _, want := range []string{"naive", "gnt-atomic", "gnt-split", "msgs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}
	// the naive row reports ~n messages, the gnt rows 1
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "gnt-split") {
			fields := strings.Fields(l)
			if len(fields) < 2 || fields[1] != "1" {
				t.Fatalf("gnt-split messages = %v, want 1", fields)
			}
		}
	}
}

func TestRunModeFaults(t *testing.T) {
	args := []string{"-mode", "run", "-n", "50", "-faults", "-seed", "1"}
	out := runCLI(t, args, fig1)
	for _, want := range []string{"retries", "degraded", "fault reports:", "transfers=", "unmatched=0/0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faulty run output missing %q:\n%s", want, out)
		}
	}
	// seeded: the same invocation prints the same bytes
	if again := runCLI(t, args, fig1); again != out {
		t.Fatalf("faulty run not deterministic:\n%s\nvs\n%s", out, again)
	}
}

func TestRunModeFaultFlagsRespected(t *testing.T) {
	// certain loss with a budget of 1 forces degradation or escalation,
	// and the custom flags flow through to the transport
	out := runCLI(t, []string{"-mode", "run", "-n", "50", "-faults",
		"-drop", "1", "-dup", "0", "-delay", "0", "-reorder", "0",
		"-timeout", "16", "-retries", "1"}, fig1)
	if !strings.Contains(out, "degraded=") {
		t.Fatalf("output missing degradation column:\n%s", out)
	}
	if strings.Contains(out, "dup=1") || !strings.Contains(out, "drop=") {
		t.Fatalf("flags not reflected in fault report:\n%s", out)
	}
	if !strings.Contains(out, "unmatched=0/0") {
		t.Fatalf("even certain loss must leave no unmatched halves:\n%s", out)
	}
}

func TestRunModeWithoutFaultsUnchanged(t *testing.T) {
	out := runCLI(t, []string{"-mode", "run", "-n", "50"}, fig1)
	if strings.Contains(out, "fault reports:") || strings.Contains(out, "degraded") {
		t.Fatalf("reliable run must not print fault columns:\n%s", out)
	}
}

func TestUnknownMode(t *testing.T) {
	if _, _, err := runCLIErr(t, []string{"-mode", "bogus"}, "x = 1"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, _, err := runCLIErr(t, nil, "do i = \n"); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestFlagErrorsGoToStderr(t *testing.T) {
	out, errOut, err := runCLIErr(t, []string{"-bogusflag"}, "x = 1")
	if err == nil {
		t.Fatal("unknown flag should error")
	}
	if out != "" {
		t.Fatalf("flag diagnostics leaked to stdout:\n%s", out)
	}
	if !strings.Contains(errOut, "bogusflag") || !strings.Contains(errOut, "Usage") {
		t.Fatalf("stderr missing flag diagnostics:\n%s", errOut)
	}
}
