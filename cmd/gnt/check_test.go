package main

import (
	"encoding/json"
	"strings"
	"testing"

	"givetake/internal/check"
)

// The check-mode goldens pin the full text and JSON renderings on the
// paper's figures, plus the failure rendering on a deliberately
// corrupted placement (-mutate). Regenerate with:
//
//	go run ./cmd/gnt -mode check [-json] [-mutate 3] testdata/<fig>.f
//
// from the repo root, then copy into cmd/gnt/testdata.

func TestCheckModeGolden(t *testing.T) {
	for _, tc := range []struct {
		file, gold string
	}{
		{"../../testdata/fig1.f", "fig1_check.golden"},
		{"../../testdata/fig3.f", "fig3_check.golden"},
		{"../../testdata/fig16.f", "fig16_check.golden"},
	} {
		out := runCLI(t, []string{"-mode", "check", tc.file}, "")
		if want := golden(t, tc.gold); out != want {
			t.Errorf("-mode check %s drifted from golden:\n--- got ---\n%s--- want ---\n%s", tc.file, out, want)
		}
	}
}

func TestCheckModeJSONGolden(t *testing.T) {
	out := runCLI(t, []string{"-mode", "check", "-json", fig1File}, "")
	if want := golden(t, "fig1_check_json.golden"); out != want {
		t.Errorf("-mode check -json drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
	var rep struct {
		Ok          bool                   `json:"ok"`
		Errors      int                    `json:"errors"`
		Diagnostics []check.Diagnostic     `json:"diagnostics"`
		Stats       map[string]check.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("check -json is not valid JSON: %v\n%s", err, out)
	}
	if !rep.Ok || rep.Errors != 0 {
		t.Fatalf("fig1 must verify cleanly: %+v", rep)
	}
	for _, name := range []string{"READ", "WRITE"} {
		if rep.Stats[name].Contexts == 0 {
			t.Errorf("stats for %s problem missing: %+v", name, rep.Stats)
		}
	}
}

// TestCheckModeCorrupted pins the failure path: a seeded corruption
// makes the verifier exit non-zero and name the violated criteria.
func TestCheckModeCorrupted(t *testing.T) {
	out, _, err := runCLIErr(t, []string{"-mode", "check", "-mutate", "3", fig1File}, "")
	if err == nil {
		t.Fatal("corrupted placement must fail verification")
	}
	if want := golden(t, "fig1_mutate3_check.golden"); out != want {
		t.Errorf("corrupted check drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
	for _, want := range []string{"mutated READ:", "mutated WRITE:", "GNT0", "C1", "FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("corrupted check output missing %q:\n%s", want, out)
		}
	}
}

// The -mutate flag only makes sense for -mode check, and a clean
// program must keep exit status 0 across text and JSON renderings.
func TestCheckModeExitStatus(t *testing.T) {
	if _, _, err := runCLIErr(t, []string{"-mode", "check", fig1File}, ""); err != nil {
		t.Fatalf("clean program must pass -mode check: %v", err)
	}
	if _, _, err := runCLIErr(t, []string{"-mode", "check", "-json", "-mutate", "3", fig1File}, ""); err == nil {
		t.Fatal("corrupted placement must fail in -json rendering too")
	}
}
