// Command gnt runs the GIVE-N-TAKE pipeline on a mini-Fortran program:
// it parses the program, builds the interval flow graph, solves the READ
// and WRITE communication placement problems, and prints the annotated
// program — or, with -mode, the flow graph, the dataflow variable dump,
// the PRE comparison, the prefetch placement, or an executed
// machine-model comparison.
//
// Usage:
//
//	gnt [flags] [file.f]        (reads stdin when no file is given)
//
//	-mode comm      annotated program with READ/WRITE placement (default)
//	-mode graph     the interval flow graph (nodes in preorder, typed edges)
//	-mode dump      every dataflow variable of the READ problem
//	-mode pre       classical PRE comparison (Morel-Renvoise, LCM, GNT)
//	-mode prefetch  the program annotated with PREFETCH issue/demand pairs
//	-mode run       execute naive vs atomic vs split under the cost model
//	-atomic         emit atomic READ/WRITE instead of Send/Recv halves
//	-n int          problem size for -mode run (default 256)
//	-seed int       branch-condition seed for -mode run
//	-faults         inject seeded transport faults in -mode run
//	-drop float     per-transmission drop probability (default 0.2)
//	-dup float      duplicate probability (default 0.1)
//	-delay float    delay probability (default 0.1)
//	-reorder float  reorder-slip probability (default 0.05)
//	-timeout int    ack timeout in steps before retransmit (default 64)
//	-retries int    retransmission budget per message (default 3)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"givetake/internal/cfg"
	"givetake/internal/comm"
	"givetake/internal/interp"
	"givetake/internal/ir"
	"givetake/internal/machine"
	"givetake/internal/memopt"
	"givetake/internal/netsim"
	"givetake/internal/pre"

	gt "givetake"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gnt:", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given streams; main is a thin wrapper
// so tests can drive every mode in-process.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("gnt", flag.ContinueOnError)
	fs.SetOutput(stdout)
	mode := fs.String("mode", "comm", "comm | graph | dump | pre | prefetch | run")
	atomic := fs.Bool("atomic", false, "emit atomic READ/WRITE instead of Send/Recv halves")
	n := fs.Int64("n", 256, "problem size for -mode run")
	seed := fs.Int64("seed", 1, "branch-condition seed for -mode run")
	faults := fs.Bool("faults", false, "inject seeded transport faults in -mode run")
	drop := fs.Float64("drop", netsim.Default.Drop, "per-transmission drop probability (with -faults)")
	dup := fs.Float64("dup", netsim.Default.Dup, "duplicate probability (with -faults)")
	delay := fs.Float64("delay", netsim.Default.Delay, "delay probability (with -faults)")
	reorder := fs.Float64("reorder", netsim.Default.Reorder, "reorder-slip probability (with -faults)")
	timeout := fs.Int64("timeout", netsim.DefaultTimeout, "ack timeout in steps before retransmit")
	retries := fs.Int("retries", netsim.DefaultMaxRetries, "retransmission budget per message (0: degrade on first loss)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	prog, err := gt.Parse(src)
	if err != nil {
		return err
	}

	switch *mode {
	case "comm":
		a, err := comm.Analyze(prog)
		if err != nil {
			return err
		}
		opt := comm.DefaultOptions
		if *atomic {
			opt.Split = false
		}
		fmt.Fprint(stdout, a.AnnotatedSource(opt))
	case "graph":
		g, err := gt.BuildGraph(prog)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, g.String())
	case "dump":
		a, err := comm.Analyze(prog)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "universe:")
		fmt.Fprint(stdout, a.Universe.Describe())
		fmt.Fprintln(stdout, "READ problem:")
		fmt.Fprint(stdout, a.Read.Dump(a.ItemNames()))
	case "pre":
		return runPRE(prog, stdout)
	case "prefetch":
		a, err := memopt.Analyze(prog)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, a.AnnotatedSource())
	case "run":
		cfgRun := interp.Config{N: *n, Seed: *seed}
		if *faults {
			budget := *retries
			if budget == 0 {
				budget = -1 // flag 0 = no retries (config 0 means default)
			}
			cfgRun.Faults = netsim.FaultConfig{
				Drop: *drop, Dup: *dup, Delay: *delay, Reorder: *reorder,
				Timeout: *timeout, MaxRetries: budget,
			}
		}
		return runMachine(prog, cfgRun, stdout)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func runPRE(prog *ir.Program, stdout io.Writer) error {
	g, err := cfg.Build(prog)
	if err != nil {
		return err
	}
	p, names := pre.BuildProblem(g)
	fmt.Fprintf(stdout, "expressions: %d\n", len(names))
	for i, nm := range names {
		fmt.Fprintf(stdout, "  e%d: %s\n", i, nm)
	}
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "analysis\tinserts\tweighted\treplaced")
	m := p.Measure(p.LazyCodeMotion())
	fmt.Fprintf(w, "LCM\t%d\t%.0f\t%d\n", m.Inserts, m.Weighted, m.Replaced)
	m = p.Measure(p.MorelRenvoise())
	fmt.Fprintf(w, "Morel-Renvoise\t%d\t%.0f\t%d\n", m.Inserts, m.Weighted, m.Replaced)
	gnt, _, err := p.GiveNTake()
	if err != nil {
		return err
	}
	m = p.Measure(gnt)
	fmt.Fprintf(w, "GIVE-N-TAKE\t%d\t%.0f\t%d\n", m.Inserts, m.Weighted, m.Replaced)
	return w.Flush()
}

func runMachine(prog *ir.Program, cfgRun interp.Config, stdout io.Writer) error {
	a, err := comm.Analyze(prog)
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		p    *ir.Program
	}{
		{"naive", comm.NaiveAnnotate(prog, comm.Options{Reads: true, Writes: true})},
		{"gnt-atomic", a.Annotate(comm.Options{Reads: true, Writes: true})},
		{"gnt-split", a.Annotate(comm.DefaultOptions)},
	}
	withFaults := cfgRun.Faults.Enabled()
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	if withFaults {
		fmt.Fprintln(w, "placement\tmsgs\tvolume\tretries\tdegraded\twait(hi)\ttotal(hi)\twait(lo)\ttotal(lo)")
	} else {
		fmt.Fprintln(w, "placement\tmsgs\tvolume\twait(hi)\ttotal(hi)\twait(lo)\ttotal(lo)")
	}
	reports := make([]string, 0, len(rows))
	for _, r := range rows {
		tr, err := interp.Run(r.p, cfgRun)
		if err != nil {
			return err
		}
		hi := machine.HighLatency.Cost(tr)
		lo := machine.LowLatency.Cost(tr)
		if withFaults {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				r.name, hi.Messages, hi.Volume, hi.Retries, hi.Degraded,
				hi.Wait, hi.Total, lo.Wait, lo.Total)
			reports = append(reports, fmt.Sprintf("%s: %s", r.name, tr.Faults))
		} else {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				r.name, hi.Messages, hi.Volume, hi.Wait, hi.Total, lo.Wait, lo.Total)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if withFaults {
		fmt.Fprintln(stdout, "\nfault reports:")
		for _, rep := range reports {
			fmt.Fprintln(stdout, " ", rep)
		}
	}
	return nil
}
