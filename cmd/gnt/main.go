// Command gnt runs the GIVE-N-TAKE pipeline on a mini-Fortran program:
// it parses the program, builds the interval flow graph, solves the READ
// and WRITE communication placement problems, and prints the annotated
// program — or, with -mode, the flow graph, the dataflow variable dump,
// the PRE comparison, the prefetch placement, an executed machine-model
// comparison, or an observability report.
//
// Usage:
//
//	gnt [flags] [file.f]        (reads stdin when no file is given)
//
//	-mode comm      annotated program with READ/WRITE placement (default)
//	-mode graph     the interval flow graph (nodes in preorder, typed edges)
//	-mode dump      every dataflow variable of the READ problem
//	-mode pre       classical PRE comparison (Morel-Renvoise, LCM, GNT)
//	-mode prefetch  the program annotated with PREFETCH issue/demand pairs
//	-mode run       execute naive vs atomic vs split under the cost model
//	-mode stats     full observability report (phases, solver, runtime)
//	-mode check     statically verify C1–C3/O1 and lint the placement
//	-mode serve     run the hardened HTTP analysis service (see -addr)
//	-mode route     run the cluster router in front of -nodes serve nodes
//	-addr addr      listen address for -mode serve/route (default :8075)
//	-nodes a,b,c    comma-separated serve node addresses for -mode route
//	-replicas K     replica-set size per key for -mode route (default 2)
//	-probe-ms N     health-probe interval in ms for -mode route (default 250)
//	-workers N      engine worker pool size for -mode serve (0: GOMAXPROCS)
//	-cache-mb N     result-cache budget in MiB for -mode serve (0: default, -1: off)
//	-atomic         emit atomic READ/WRITE instead of Send/Recv halves
//	-explain node   why communication is placed at that node (or "all")
//	-trace out.json write a Chrome trace-event profile of the pipeline
//	-json           render -mode stats/check as JSON instead of text
//	-mutate seed    corrupt one placement bit before -mode check (0: off)
//	-n int          problem size for -mode run (default 256)
//	-seed int       branch-condition seed for -mode run
//	-faults         inject seeded transport faults in -mode run
//	-drop float     per-transmission drop probability (default 0.2)
//	-dup float      duplicate probability (default 0.1)
//	-delay float    delay probability (default 0.1)
//	-reorder float  reorder-slip probability (default 0.05)
//	-timeout int    ack timeout in steps before retransmit (default 64)
//	-retries int    retransmission budget per message (default 3)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"givetake/internal/cfg"
	"givetake/internal/check"
	"givetake/internal/check/mutate"
	"givetake/internal/cluster"
	"givetake/internal/comm"
	"givetake/internal/interp"
	"givetake/internal/ir"
	"givetake/internal/machine"
	"givetake/internal/memopt"
	"givetake/internal/netsim"
	"givetake/internal/obs"
	"givetake/internal/pre"
	"givetake/internal/serve"

	gt "givetake"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gnt:", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given streams; main is a thin wrapper
// so tests can drive every mode in-process. Diagnostics (flag errors,
// usage) go to stderr so piped output stays clean.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gnt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "comm", "comm | graph | dump | pre | prefetch | run | stats | check | serve | route")
	addr := fs.String("addr", ":8075", "listen address for -mode serve/route")
	nodes := fs.String("nodes", "", "comma-separated serve node addresses for -mode route")
	replicas := fs.Int("replicas", 0, "replica-set size per key for -mode route (0: default 2)")
	probeMS := fs.Int64("probe-ms", 0, "health-probe interval in ms for -mode route (0: default 250)")
	workers := fs.Int("workers", 0, "engine worker pool size for -mode serve (0: GOMAXPROCS)")
	cacheMB := fs.Int64("cache-mb", 0, "result-cache budget in MiB for -mode serve (0: default, -1: off)")
	journalDir := fs.String("journal-dir", "", "durable result journal directory for -mode serve (empty: no journal)")
	journalFlushMS := fs.Int64("journal-flush-ms", 0, "max time a result waits for group commit, in ms (0: default 50)")
	journalMaxBatch := fs.Int("journal-max-batch", 0, "max results per journal group commit (0: default 64)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for -mode serve (empty: off)")
	accessLogEvery := fs.Int("access-log-every", 0, "log every nth analysis request as a JSON line to stderr (0: off, 1: all)")
	atomic := fs.Bool("atomic", false, "emit atomic READ/WRITE instead of Send/Recv halves")
	explain := fs.String("explain", "", "explain the placement at a node (preorder number, or \"all\")")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON profile to this file")
	jsonOut := fs.Bool("json", false, "render -mode stats or -mode check as JSON")
	mutateSeed := fs.Int64("mutate", 0, "seed one placement corruption before -mode check (0: off)")
	n := fs.Int64("n", 256, "problem size for -mode run")
	seed := fs.Int64("seed", 1, "branch-condition seed for -mode run")
	faults := fs.Bool("faults", false, "inject seeded transport faults in -mode run")
	drop := fs.Float64("drop", netsim.Default.Drop, "per-transmission drop probability (with -faults)")
	dup := fs.Float64("dup", netsim.Default.Dup, "duplicate probability (with -faults)")
	delay := fs.Float64("delay", netsim.Default.Delay, "delay probability (with -faults)")
	reorder := fs.Float64("reorder", netsim.Default.Reorder, "reorder-slip probability (with -faults)")
	timeout := fs.Int64("timeout", netsim.DefaultTimeout, "ack timeout in steps before retransmit")
	retries := fs.Int("retries", netsim.DefaultMaxRetries, "retransmission budget per message (0: degrade on first loss)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *mode == "route" {
		return runRoute(*addr, *nodes, *replicas, *probeMS, stderr)
	}
	if *mode == "serve" {
		return runServe(serveFlags{
			addr: *addr, workers: *workers, cacheMB: *cacheMB,
			journalDir: *journalDir, journalFlushMS: *journalFlushMS,
			journalMaxBatch: *journalMaxBatch,
			pprofAddr:       *pprofAddr,
			accessLogEvery:  *accessLogEvery,
		}, stderr)
	}

	// a recorder exists only when something will consume it; everywhere
	// else the pipeline sees a nil Collector and pays nothing
	var rec *obs.Recorder
	var col obs.Collector
	if *tracePath != "" || *mode == "stats" {
		rec = obs.NewRecorder(obs.Config{Mem: true})
		col = rec
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	program := fs.Arg(0)
	if program == "" {
		program = "<stdin>"
	}
	end := obs.Begin(col, obs.SpanParse)
	prog, err := gt.Parse(src)
	if err != nil {
		end()
		return err
	}
	end("decls", len(prog.Decls))

	cfgRun := interp.Config{N: *n, Seed: *seed, Collector: col}
	if *faults {
		budget := *retries
		if budget == 0 {
			budget = -1 // flag 0 = no retries (config 0 means default)
		}
		cfgRun.Faults = netsim.FaultConfig{
			Drop: *drop, Dup: *dup, Delay: *delay, Reorder: *reorder,
			Timeout: *timeout, MaxRetries: budget,
		}
	}

	if err := dispatch(*mode, *atomic, *explain, *jsonOut, *mutateSeed, prog, cfgRun, rec, col, program, stdout); err != nil {
		return err
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// serveFlags carries the -mode serve flag values into runServe.
type serveFlags struct {
	addr            string
	workers         int
	cacheMB         int64
	journalDir      string
	journalFlushMS  int64
	journalMaxBatch int
	pprofAddr       string
	accessLogEvery  int
}

// runServe starts the hardened analysis service (internal/serve) and
// blocks until SIGINT/SIGTERM, then shuts down gracefully, draining
// in-flight requests and group-committing the journal's pending batch.
func runServe(f serveFlags, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cacheBytes := f.cacheMB << 20
	if f.cacheMB < 0 {
		cacheBytes = -1
	}
	var accessLog io.Writer
	if f.accessLogEvery > 0 {
		accessLog = stderr
	}
	s, err := serve.New(serve.Config{
		Addr: f.addr, Workers: f.workers, CacheBytes: cacheBytes,
		JournalDir:       f.journalDir,
		JournalFlushWait: time.Duration(f.journalFlushMS) * time.Millisecond,
		JournalMaxBatch:  f.journalMaxBatch,
		PprofAddr:        f.pprofAddr,
		AccessLog:        accessLog,
		AccessLogEvery:   f.accessLogEvery,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	durable := ""
	if f.journalDir != "" {
		durable = fmt.Sprintf("; journal %s", f.journalDir)
	}
	profiling := ""
	if f.pprofAddr != "" {
		profiling = fmt.Sprintf("; pprof %s", f.pprofAddr)
	}
	fmt.Fprintf(stderr, "gnt: serving on %s (POST /analyze, POST /batch, GET /healthz, GET /readyz, GET /metrics, GET /debug/requests; %d workers%s%s)\n",
		f.addr, s.Engine().Workers(), durable, profiling)
	err = s.ListenAndServe(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// runRoute starts the cluster router (internal/cluster) over the given
// serve nodes and blocks until SIGINT/SIGTERM, then drains: /readyz
// flips to draining first so upstream balancers stop sending, the
// listener stays open for the grace window, then closes gracefully.
func runRoute(addr, nodes string, replicas int, probeMS int64, stderr io.Writer) error {
	var nodeList []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		return errors.New("-mode route needs -nodes host:port[,host:port...]")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r, err := cluster.New(cluster.Config{
		Addr:          addr,
		Nodes:         nodeList,
		Replicas:      replicas,
		ProbeInterval: time.Duration(probeMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "gnt: routing on %s over %d nodes (POST /analyze, POST /batch, GET /healthz, GET /readyz, GET /metrics, GET /debug/requests)\n",
		addr, len(nodeList))
	err = r.ListenAndServe(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// dispatch runs one mode; separated from run so the trace file is
// written after every mode, including the early-returning ones.
func dispatch(mode string, atomic bool, explain string, jsonOut bool, mutateSeed int64,
	prog *ir.Program, cfgRun interp.Config, rec *obs.Recorder, col obs.Collector,
	program string, stdout io.Writer) error {
	if explain != "" {
		a, err := comm.AnalyzeObs(prog, col)
		if err != nil {
			return err
		}
		if explain == "all" {
			fmt.Fprint(stdout, a.ExplainAll())
			return nil
		}
		node, err := strconv.Atoi(explain)
		if err != nil {
			return fmt.Errorf("-explain wants a node number or \"all\", got %q", explain)
		}
		s, err := a.ExplainNode(node)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, s)
		return nil
	}
	switch mode {
	case "comm":
		a, err := comm.AnalyzeObs(prog, col)
		if err != nil {
			return err
		}
		opt := comm.DefaultOptions
		if atomic {
			opt.Split = false
		}
		fmt.Fprint(stdout, a.AnnotatedSource(opt))
	case "graph":
		g, err := gt.BuildGraph(prog)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, g.String())
	case "dump":
		a, err := comm.AnalyzeObs(prog, col)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "universe:")
		fmt.Fprint(stdout, a.Universe.Describe())
		fmt.Fprintln(stdout, "READ problem:")
		fmt.Fprint(stdout, a.Read.Dump(a.ItemNames()))
	case "pre":
		return runPRE(prog, stdout)
	case "prefetch":
		a, err := memopt.Analyze(prog)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, a.AnnotatedSource())
	case "run":
		return runMachine(prog, cfgRun, stdout)
	case "stats":
		return runStats(prog, cfgRun, rec, col, jsonOut, program, stdout)
	case "check":
		return runCheck(prog, col, jsonOut, mutateSeed, program, stdout)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func runPRE(prog *ir.Program, stdout io.Writer) error {
	g, err := cfg.Build(prog)
	if err != nil {
		return err
	}
	p, names := pre.BuildProblem(g)
	fmt.Fprintf(stdout, "expressions: %d\n", len(names))
	for i, nm := range names {
		fmt.Fprintf(stdout, "  e%d: %s\n", i, nm)
	}
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "analysis\tinserts\tweighted\treplaced")
	m := p.Measure(p.LazyCodeMotion())
	fmt.Fprintf(w, "LCM\t%d\t%.0f\t%d\n", m.Inserts, m.Weighted, m.Replaced)
	m = p.Measure(p.MorelRenvoise())
	fmt.Fprintf(w, "Morel-Renvoise\t%d\t%.0f\t%d\n", m.Inserts, m.Weighted, m.Replaced)
	gnt, _, err := p.GiveNTake()
	if err != nil {
		return err
	}
	m = p.Measure(gnt)
	fmt.Fprintf(w, "GIVE-N-TAKE\t%d\t%.0f\t%d\n", m.Inserts, m.Weighted, m.Replaced)
	return w.Flush()
}

// variants builds the three placements compared by -mode run and
// -mode stats, wrapping each annotation in a placement span.
func variants(prog *ir.Program, a *comm.Analysis, col obs.Collector) []struct {
	name string
	p    *ir.Program
} {
	out := make([]struct {
		name string
		p    *ir.Program
	}, 0, 3)
	build := func(name string, f func() *ir.Program) {
		end := obs.Begin(col, obs.SpanPrefixPlacement+name)
		p := f()
		end()
		out = append(out, struct {
			name string
			p    *ir.Program
		}{name, p})
	}
	build("naive", func() *ir.Program {
		return comm.NaiveAnnotate(prog, comm.Options{Reads: true, Writes: true})
	})
	build("gnt-atomic", func() *ir.Program {
		return a.Annotate(comm.Options{Reads: true, Writes: true})
	})
	build("gnt-split", func() *ir.Program { return a.Annotate(comm.DefaultOptions) })
	return out
}

func runMachine(prog *ir.Program, cfgRun interp.Config, stdout io.Writer) error {
	a, err := comm.AnalyzeObs(prog, cfgRun.Collector)
	if err != nil {
		return err
	}
	rows := variants(prog, a, cfgRun.Collector)
	withFaults := cfgRun.Faults.Enabled()
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	if withFaults {
		fmt.Fprintln(w, "placement\tmsgs\tvolume\tretries\tdegraded\twait(hi)\ttotal(hi)\twait(lo)\ttotal(lo)")
	} else {
		fmt.Fprintln(w, "placement\tmsgs\tvolume\twait(hi)\ttotal(hi)\twait(lo)\ttotal(lo)")
	}
	reports := make([]string, 0, len(rows))
	for _, r := range rows {
		cfgV := cfgRun
		cfgV.SpanName = obs.SpanPrefixExecute + r.name
		tr, err := interp.Run(r.p, cfgV)
		if err != nil {
			return err
		}
		hi := machine.HighLatency.Cost(tr)
		lo := machine.LowLatency.Cost(tr)
		if withFaults {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				r.name, hi.Messages, hi.Volume, hi.Retries, hi.Degraded,
				hi.Wait, hi.Total, lo.Wait, lo.Total)
			reports = append(reports, fmt.Sprintf("%s: %s", r.name, tr.Faults))
		} else {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				r.name, hi.Messages, hi.Volume, hi.Wait, hi.Total, lo.Wait, lo.Total)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if withFaults {
		fmt.Fprintln(stdout, "\nfault reports:")
		for _, rep := range reports {
			fmt.Fprintln(stdout, " ", rep)
		}
	}
	return nil
}

// runStats assembles the full observability report: pipeline phases,
// solver counters (with the one-pass invariant checked), per-variant
// runtime statistics with cost-model evaluations, and PRE metrics.
func runStats(prog *ir.Program, cfgRun interp.Config, rec *obs.Recorder, col obs.Collector,
	jsonOut bool, program string, stdout io.Writer) error {
	a, err := comm.AnalyzeObs(prog, col)
	if err != nil {
		return err
	}
	report := &obs.Report{Program: program, Solver: a.Counters()}
	for _, sc := range report.Solver {
		if err := sc.OnePass(); err != nil {
			return err
		}
	}
	for _, r := range variants(prog, a, col) {
		cfgV := cfgRun
		cfgV.SpanName = obs.SpanPrefixExecute + r.name
		tr, err := interp.Run(r.p, cfgV)
		if err != nil {
			return err
		}
		rs := tr.Stats(r.name)
		rs.Cost = map[string]obs.CostStats{
			"high-latency": machine.HighLatency.Cost(tr).Stats(),
			"low-latency":  machine.LowLatency.Cost(tr).Stats(),
		}
		report.Runtime = append(report.Runtime, rs)
	}
	if extra, err := preMetricsJSON(prog); err == nil && extra != nil {
		report.Extra = map[string]json.RawMessage{"pre": extra}
	}
	if rec != nil {
		report.Phases = rec.Phases()
		report.Counters = rec.Counters()
	}
	if jsonOut {
		b, err := report.JSON()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(stdout, "%s\n", b)
		return err
	}
	return report.WriteText(stdout)
}

// runCheck statically re-verifies the solved placement (C1–C3/O1 over
// all paths) and runs the communication linter, printing one line per
// diagnostic plus a summary — or, with -json, the structured result.
// A non-zero -mutate seed first corrupts one RES bit per problem
// (internal/check/mutate), turning the mode into a self-test: the
// verifier is expected to fail and name the violated criterion.
func runCheck(prog *ir.Program, col obs.Collector, jsonOut bool, mutateSeed int64,
	program string, stdout io.Writer) error {
	a, err := comm.AnalyzeObs(prog, col)
	if err != nil {
		return err
	}
	var mutations []string
	if mutateSeed != 0 {
		r := rand.New(rand.NewSource(mutateSeed))
		for _, p := range a.Problems() {
			if m, _, ok := mutate.Apply(r, p.Sol, p.Universe); ok {
				mutations = append(mutations, p.Name+": "+m.String())
			}
		}
	}
	res := a.CheckPlacement(col)
	if jsonOut {
		out := struct {
			Program     string                 `json:"program"`
			Mutations   []string               `json:"mutations,omitempty"`
			Ok          bool                   `json:"ok"`
			Errors      int                    `json:"errors"`
			Warnings    int                    `json:"warnings"`
			Diagnostics []check.Diagnostic     `json:"diagnostics"`
			Stats       map[string]check.Stats `json:"stats"`
		}{program, mutations, res.Ok(), len(res.Errors()), len(res.Warnings()),
			res.Diagnostics, res.Stats}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", b)
	} else {
		for _, m := range mutations {
			fmt.Fprintf(stdout, "mutated %s\n", m)
		}
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		verdict := "ok"
		if !res.Ok() {
			verdict = "FAILED"
		}
		fmt.Fprintf(stdout, "%s: %s (%d errors, %d warnings)\n",
			program, verdict, len(res.Errors()), len(res.Warnings()))
	}
	if !res.Ok() {
		return fmt.Errorf("placement verification failed: %d error(s)", len(res.Errors()))
	}
	return nil
}

// preMetricsJSON renders the three PRE analyses' metrics, or nil when
// the program yields no PRE problem.
func preMetricsJSON(prog *ir.Program) (json.RawMessage, error) {
	g, err := cfg.Build(prog)
	if err != nil {
		return nil, err
	}
	p, names := pre.BuildProblem(g)
	if len(names) == 0 {
		return nil, nil
	}
	gnt, _, err := p.GiveNTake()
	if err != nil {
		return nil, err
	}
	out := map[string]pre.Metrics{
		"lcm":            p.Measure(p.LazyCodeMotion()),
		"morel-renvoise": p.Measure(p.MorelRenvoise()),
		"give-n-take":    p.Measure(gnt),
	}
	return json.Marshal(out)
}
