package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"givetake/internal/obs"
)

// fig1File is the committed copy of the paper's Figure 1 program; the
// golden outputs in testdata/ were produced from it.
const fig1File = "../../testdata/fig1.f"

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGraphModeGolden(t *testing.T) {
	out := runCLI(t, []string{"-mode", "graph", fig1File}, "")
	if want := golden(t, "fig1_graph.golden"); out != want {
		t.Errorf("-mode graph drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestDumpModeGolden(t *testing.T) {
	out := runCLI(t, []string{"-mode", "dump", fig1File}, "")
	if want := golden(t, "fig1_dump.golden"); out != want {
		t.Errorf("-mode dump drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestStatsModeText(t *testing.T) {
	out := runCLI(t, []string{"-mode", "stats", "-n", "50", fig1File}, "")
	for _, want := range []string{
		"phases:", "solver:", "runtime:", "cost models:",
		"parse", "solve-read", "solve-write", "execute:gnt-split",
		"READ", "WRITE", "naive", "gnt-atomic", "gnt-split",
		"high-latency", "low-latency",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsModeJSON(t *testing.T) {
	out := runCLI(t, []string{"-mode", "stats", "-json", "-n", "50", fig1File}, "")
	var rep obs.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stats -json is not valid JSON: %v\n%s", err, out)
	}
	if len(rep.Phases) == 0 {
		t.Error("report has no phases")
	}
	if len(rep.Solver) != 2 {
		t.Fatalf("want READ and WRITE solver counters, got %d", len(rep.Solver))
	}
	for _, sc := range rep.Solver {
		if err := sc.OnePass(); err != nil {
			t.Error(err)
		}
		if want := int64(20 * sc.Nodes); sc.EquationEvals != want {
			t.Errorf("%s: EquationEvals = %d, want %d (20 per node)", sc.Problem, sc.EquationEvals, want)
		}
		if sc.WordOps != sc.SetOps*int64(sc.Words) {
			t.Errorf("%s: WordOps %d != SetOps %d × Words %d", sc.Problem, sc.WordOps, sc.SetOps, sc.Words)
		}
	}
	if len(rep.Runtime) != 3 {
		t.Fatalf("want 3 runtime variants, got %d", len(rep.Runtime))
	}
	for _, rt := range rep.Runtime {
		if rt.Cost["high-latency"].Total <= 0 || rt.Cost["low-latency"].Total <= 0 {
			t.Errorf("%s: missing cost-model rows: %+v", rt.Name, rt.Cost)
		}
	}
	// fig1's right-hand sides are all trivial, so it yields no PRE
	// problem; a program with a loop-invariant expression must surface
	// the PRE metrics in the extra section
	out = runCLI(t, []string{"-mode", "stats", "-json", "-n", "10"},
		"do i = 1, n\n x(i) = b + c\nenddo\n")
	var rep2 obs.Report
	if err := json.Unmarshal([]byte(out), &rep2); err != nil {
		t.Fatal(err)
	}
	raw, ok := rep2.Extra["pre"]
	if !ok {
		t.Fatalf("report missing PRE metrics in extra section:\n%s", out)
	}
	var preMetrics map[string]struct {
		Inserts int `json:"inserts"`
	}
	if err := json.Unmarshal(raw, &preMetrics); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"lcm", "morel-renvoise", "give-n-take"} {
		if _, ok := preMetrics[k]; !ok {
			t.Errorf("PRE metrics missing %q: %s", k, raw)
		}
	}
}

// The trace flag must produce a loadable Chrome trace-event file: a
// traceEvents array of M/X/C events covering the pipeline phases.
func TestTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runCLI(t, []string{"-trace", path, fig1File}, "")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M", "C":
		case "X":
			if ev.Dur <= 0 {
				t.Errorf("complete event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		seen[ev.Name] = true
	}
	for _, want := range []string{"parse", "cfg-build", "interval-reduce", "solve-read", "solve-write"} {
		if !seen[want] {
			t.Errorf("trace missing %q span", want)
		}
	}
}

func TestExplainNode(t *testing.T) {
	out := runCLI(t, []string{"-explain", "1", fig1File}, "")
	for _, want := range []string{"node 1", "READ_Send", "Eq.14", "needed:", "missing:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	all := runCLI(t, []string{"-explain", "all", fig1File}, "")
	if !strings.Contains(all, "READ_Recv") {
		t.Fatalf("explain all missing the lazy half:\n%s", all)
	}
	if _, _, err := runCLIErr(t, []string{"-explain", "99", fig1File}, ""); err == nil {
		t.Error("out-of-range node should error")
	}
	if _, _, err := runCLIErr(t, []string{"-explain", "zz", fig1File}, ""); err == nil {
		t.Error("non-numeric node should error")
	}
}

// Observability is opt-in and passive: attaching a recorder must not
// change what the pipeline computes. -mode run with and without -trace
// must print identical bytes.
func TestNilCollectorInvariance(t *testing.T) {
	plain := runCLI(t, []string{"-mode", "run", "-n", "50", fig1File}, "")
	path := filepath.Join(t.TempDir(), "trace.json")
	traced := runCLI(t, []string{"-mode", "run", "-n", "50", "-trace", path, fig1File}, "")
	if plain != traced {
		t.Fatalf("recorder changed -mode run output:\n--- plain ---\n%s--- traced ---\n%s", plain, traced)
	}
	alsoFaults := runCLI(t, []string{"-mode", "run", "-n", "50", "-faults", fig1File}, "")
	path2 := filepath.Join(t.TempDir(), "trace.json")
	tracedFaults := runCLI(t, []string{"-mode", "run", "-n", "50", "-faults", "-trace", path2, fig1File}, "")
	if alsoFaults != tracedFaults {
		t.Fatalf("recorder changed faulty -mode run output")
	}
}
