package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"givetake/internal/check"
)

func TestBenchArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"../../testdata"}, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if art.Schema != Schema {
		t.Errorf("schema = %q, want %q", art.Schema, Schema)
	}
	if len(art.Corpus) < 5 {
		t.Fatalf("corpus has %d entries, want the full testdata set", len(art.Corpus))
	}
	for _, e := range art.Corpus {
		if e.Report == nil || len(e.Report.Solver) == 0 || len(e.Report.Phases) == 0 {
			t.Errorf("%s: incomplete report", e.File)
			continue
		}
		for _, sc := range e.Report.Solver {
			if err := sc.OnePass(); err != nil {
				t.Errorf("%s: %v", e.File, err)
			}
		}
		// v2: every program records verifier wall time and work profile
		hasCheck := false
		for _, p := range e.Report.Phases {
			if p.Name == "check" {
				hasCheck = true
			}
		}
		if !hasCheck {
			t.Errorf("%s: report missing the check phase span", e.File)
		}
		raw, ok := e.Report.Extra["check"]
		if !ok {
			t.Errorf("%s: report missing the check extra section", e.File)
			continue
		}
		var chk struct {
			Errors int                    `json:"errors"`
			Stats  map[string]check.Stats `json:"stats"`
		}
		if err := json.Unmarshal(raw, &chk); err != nil {
			t.Errorf("%s: check extra not valid JSON: %v", e.File, err)
			continue
		}
		if chk.Errors != 0 {
			t.Errorf("%s: archived corpus has %d verification errors", e.File, chk.Errors)
		}
		if chk.Stats["READ"].Contexts == 0 {
			t.Errorf("%s: check stats empty: %+v", e.File, chk.Stats)
		}
	}
}

func TestBenchNoCorpus(t *testing.T) {
	if err := run([]string{t.TempDir()}, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("empty corpus should error")
	}
}
