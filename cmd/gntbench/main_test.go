package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"givetake/internal/check"
)

func TestBenchArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"../../testdata"}, out, DefaultTimeout, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if art.Schema != Schema {
		t.Errorf("schema = %q, want %q", art.Schema, Schema)
	}
	if len(art.Corpus) < 5 {
		t.Fatalf("corpus has %d entries, want the full testdata set", len(art.Corpus))
	}
	for _, e := range art.Corpus {
		if e.Error != "" {
			t.Errorf("%s: corpus entry errored: %s", e.File, e.Error)
			continue
		}
		if e.Report == nil || len(e.Report.Solver) == 0 || len(e.Report.Phases) == 0 {
			t.Errorf("%s: incomplete report", e.File)
			continue
		}
		for _, sc := range e.Report.Solver {
			if err := sc.OnePass(); err != nil {
				t.Errorf("%s: %v", e.File, err)
			}
		}
		// v2: every program records verifier wall time and work profile
		hasCheck := false
		for _, p := range e.Report.Phases {
			if p.Name == "check" {
				hasCheck = true
			}
		}
		if !hasCheck {
			t.Errorf("%s: report missing the check phase span", e.File)
		}
		raw, ok := e.Report.Extra["check"]
		if !ok {
			t.Errorf("%s: report missing the check extra section", e.File)
			continue
		}
		var chk struct {
			Errors int                    `json:"errors"`
			Stats  map[string]check.Stats `json:"stats"`
		}
		if err := json.Unmarshal(raw, &chk); err != nil {
			t.Errorf("%s: check extra not valid JSON: %v", e.File, err)
			continue
		}
		if chk.Errors != 0 {
			t.Errorf("%s: archived corpus has %d verification errors", e.File, chk.Errors)
		}
		if chk.Stats["READ"].Contexts == 0 {
			t.Errorf("%s: check stats empty: %+v", e.File, chk.Stats)
		}
	}
}

// TestBenchParallelSweep: -parallel adds the v4 timing block with the
// cache counters proving the warm pass was served entirely from cache.
func TestBenchParallelSweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"../../testdata"}, out, DefaultTimeout, 4, 0, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatal(err)
	}
	if art.Timing == nil || art.Cache == nil {
		t.Fatal("parallel run must emit timing and cache sections")
	}
	if art.Timing.Parallel != 4 || art.Timing.ParallelWallMS <= 0 || art.Timing.SerialWallMS <= 0 {
		t.Fatalf("timing block incomplete: %+v", art.Timing)
	}
	n := int64(len(art.Corpus))
	if art.Cache.Misses != n || art.Cache.Hits != n {
		t.Fatalf("cache counters = %+v, want %d hits and misses", art.Cache, n)
	}
	if got := art.Cache.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5 after one cold and one warm sweep", got)
	}
	if art.Pipeline == nil {
		t.Fatal("parallel run must emit the pipeline section")
	}
	if art.Pipeline.Items < len(art.Corpus) || art.Pipeline.WallMS <= 0 ||
		art.Pipeline.IdealWallMS <= 0 || art.Pipeline.Ratio <= 0 || art.Pipeline.Ratio > 1.001 {
		t.Fatalf("pipeline block incomplete: %+v", art.Pipeline)
	}
	if len(art.Pipeline.Stages) != 7 {
		t.Fatalf("pipeline block has %d stages, want 7", len(art.Pipeline.Stages))
	}
	// an impossible bar must fail the run
	if err := run([]string{"../../testdata"}, out, DefaultTimeout, 4, 1e9, 0); err == nil {
		t.Fatal("-assert-speedup 1e9 should fail")
	}
	if err := run([]string{"../../testdata"}, out, DefaultTimeout, 4, 0, 1.01); err == nil {
		t.Fatal("-assert-pipeline above 1 should fail")
	}
}

func TestBenchNoCorpus(t *testing.T) {
	if err := run([]string{t.TempDir()}, filepath.Join(t.TempDir(), "x.json"), DefaultTimeout, 0, 0, 0); err == nil {
		t.Fatal("empty corpus should error")
	}
}

// TestBenchTimeoutRecorded: a program exceeding the per-entry budget is
// recorded as an entry error in the artifact; the run exits nonzero but
// still writes every other entry.
func TestBenchTimeoutRecorded(t *testing.T) {
	dir := t.TempDir()
	// heavy enough that 1ns always expires before the pipeline finishes
	src := "distributed x(1000)\nreal y(1000)\ndo i = 1, n\n y(i) = x(i)\nenddo\n"
	if err := os.WriteFile(filepath.Join(dir, "slow.f"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{dir}, out, 1, 0, 0, 0)
	if err == nil {
		t.Fatal("timed-out corpus should make run return an error")
	}
	b, err2 := os.ReadFile(out)
	if err2 != nil {
		t.Fatalf("artifact must still be written: %v", err2)
	}
	var art artifact
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Corpus) != 1 {
		t.Fatalf("corpus entries = %d, want 1", len(art.Corpus))
	}
	e := art.Corpus[0]
	if e.Error == "" || e.Report != nil {
		t.Fatalf("timed-out entry must record the error and no report: %+v", e)
	}
	if !strings.Contains(e.Error, "timeout") &&
		!strings.Contains(e.Error, "deadline") && !strings.Contains(e.Error, "canceled") {
		t.Fatalf("entry error %q does not mention the timeout", e.Error)
	}
}
