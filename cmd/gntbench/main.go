// Command gntbench runs the GIVE-N-TAKE pipeline over a corpus of
// mini-Fortran programs and writes a machine-readable benchmark
// artifact: per-program phase timings and solver counters. CI runs it
// on the testdata corpus and archives the result (BENCH_obs.json) so
// solver-work regressions show up as artifact diffs.
//
// Usage:
//
//	gntbench [-out BENCH_obs.json] [-timeout 30s] dir [dir...]
//
// Each directory is walked recursively for *.f files. Every program
// gets a wall-clock budget (-timeout, default 30s); a program that
// exceeds it — or fails to parse, analyze, or verify — is recorded in
// the artifact as a per-entry error instead of hanging or aborting the
// whole corpus, and the run exits nonzero so CI still notices.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/obs"

	gt "givetake"
)

// Schema identifies the artifact layout; bump on incompatible change.
// v2 added the static-verifier pass: a "check" phase span (wall time)
// plus the verifier work profile and finding counts per program.
// v3 added the per-program wall-clock guard: entries may carry an
// "error" field (with no report) instead of failing the whole run.
const Schema = "gnt-bench/v3"

// DefaultTimeout is the per-program wall-clock budget.
const DefaultTimeout = 30 * time.Second

type artifact struct {
	Schema string  `json:"schema"`
	Corpus []entry `json:"corpus"`
}

type entry struct {
	File   string      `json:"file"`
	Report *obs.Report `json:"report,omitempty"`
	// Error records why this program produced no report (timeout,
	// parse/analysis failure, verification failure).
	Error string `json:"error,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "output file (\"-\" for stdout)")
	timeout := flag.Duration("timeout", DefaultTimeout, "per-program wall-clock budget")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "gntbench: no corpus directories given")
		os.Exit(2)
	}
	if err := run(flag.Args(), *out, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "gntbench:", err)
		os.Exit(1)
	}
}

func run(dirs []string, out string, timeout time.Duration) error {
	files, err := collect(dirs)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no .f files under %v", dirs)
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	art := artifact{Schema: Schema}
	failed := 0
	for _, file := range files {
		rep, err := benchGuarded(file, timeout)
		e := entry{File: filepath.ToSlash(file), Report: rep}
		if err != nil {
			e.Error = err.Error()
			e.Report = nil
			failed++
			fmt.Fprintf(os.Stderr, "gntbench: %s: %v\n", file, err)
		}
		art.Corpus = append(art.Corpus, e)
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		if _, err = os.Stdout.Write(b); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d corpus entries failed (errors recorded in artifact)",
			failed, len(files))
	}
	return nil
}

// benchGuarded runs one program under a wall-clock budget. The pipeline
// is cooperatively cancellable, so a timeout both returns promptly here
// and actually stops the work; the select is the backstop for any
// future non-cooperative stage.
func benchGuarded(file string, timeout time.Duration) (*obs.Report, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	type result struct {
		rep *obs.Report
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := bench(ctx, file)
		ch <- result{rep, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("timeout after %v: %w", timeout, r.err)
		}
		return r.rep, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("timeout after %v (stage did not cancel)", timeout)
	}
}

// collect walks the directories for .f programs, sorted for stable
// artifact ordering.
func collect(dirs []string) ([]string, error) {
	var files []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".f") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// bench runs the analysis pipeline once on a program, recording phase
// spans and solver counters, then statically re-verifies the placement.
// One-pass violations and verification errors fail the run: the
// artifact must never archive counters that break the O(E) claim, nor a
// corpus the verifier rejects.
func bench(ctx context.Context, file string) (*obs.Report, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	prog, err := gt.Parse(string(src))
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(obs.Config{Mem: true})
	a, err := comm.AnalyzeCtx(ctx, prog, rec)
	if err != nil {
		return nil, err
	}
	res, err := a.CheckPlacementCtx(ctx, rec)
	if err != nil {
		return nil, err
	}
	if !res.Ok() {
		return nil, fmt.Errorf("placement verification failed: %s", res.Errors()[0])
	}
	rep := &obs.Report{
		Program: filepath.ToSlash(file),
		Solver:  a.Counters(),
		Phases:  rec.Phases(),
	}
	for _, sc := range rep.Solver {
		if err := sc.OnePass(); err != nil {
			return nil, err
		}
	}
	checkExtra, err := json.Marshal(struct {
		Errors   int                    `json:"errors"`
		Warnings int                    `json:"warnings"`
		Stats    map[string]check.Stats `json:"stats"`
	}{len(res.Errors()), len(res.Warnings()), res.Stats})
	if err != nil {
		return nil, err
	}
	rep.Extra = map[string]json.RawMessage{"check": checkExtra}
	return rep, nil
}
