// Command gntbench runs the GIVE-N-TAKE pipeline over a corpus of
// mini-Fortran programs and writes a machine-readable benchmark
// artifact: per-program phase timings and solver counters. CI runs it
// on the testdata corpus and archives the result (BENCH_obs.json) so
// solver-work regressions show up as artifact diffs.
//
// Usage:
//
//	gntbench [-out BENCH_obs.json] dir [dir...]
//
// Each directory is walked recursively for *.f files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/obs"

	gt "givetake"
)

// Schema identifies the artifact layout; bump on incompatible change.
// v2 added the static-verifier pass: a "check" phase span (wall time)
// plus the verifier work profile and finding counts per program.
const Schema = "gnt-bench/v2"

type artifact struct {
	Schema string  `json:"schema"`
	Corpus []entry `json:"corpus"`
}

type entry struct {
	File   string      `json:"file"`
	Report *obs.Report `json:"report"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "output file (\"-\" for stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "gntbench: no corpus directories given")
		os.Exit(2)
	}
	if err := run(flag.Args(), *out); err != nil {
		fmt.Fprintln(os.Stderr, "gntbench:", err)
		os.Exit(1)
	}
}

func run(dirs []string, out string) error {
	files, err := collect(dirs)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no .f files under %v", dirs)
	}
	art := artifact{Schema: Schema}
	for _, file := range files {
		rep, err := bench(file)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		art.Corpus = append(art.Corpus, entry{File: filepath.ToSlash(file), Report: rep})
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// collect walks the directories for .f programs, sorted for stable
// artifact ordering.
func collect(dirs []string) ([]string, error) {
	var files []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".f") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// bench runs the analysis pipeline once on a program, recording phase
// spans and solver counters, then statically re-verifies the placement.
// One-pass violations and verification errors fail the run: the
// artifact must never archive counters that break the O(E) claim, nor a
// corpus the verifier rejects.
func bench(file string) (*obs.Report, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	prog, err := gt.Parse(string(src))
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(obs.Config{Mem: true})
	a, err := comm.AnalyzeObs(prog, rec)
	if err != nil {
		return nil, err
	}
	res := a.CheckPlacement(rec)
	if !res.Ok() {
		return nil, fmt.Errorf("placement verification failed: %s", res.Errors()[0])
	}
	rep := &obs.Report{
		Program: filepath.ToSlash(file),
		Solver:  a.Counters(),
		Phases:  rec.Phases(),
	}
	for _, sc := range rep.Solver {
		if err := sc.OnePass(); err != nil {
			return nil, err
		}
	}
	checkExtra, err := json.Marshal(struct {
		Errors   int                    `json:"errors"`
		Warnings int                    `json:"warnings"`
		Stats    map[string]check.Stats `json:"stats"`
	}{len(res.Errors()), len(res.Warnings()), res.Stats})
	if err != nil {
		return nil, err
	}
	rep.Extra = map[string]json.RawMessage{"check": checkExtra}
	return rep, nil
}
