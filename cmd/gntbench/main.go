// Command gntbench runs the GIVE-N-TAKE pipeline over a corpus of
// mini-Fortran programs and writes a machine-readable benchmark
// artifact: per-program phase timings and solver counters. CI runs it
// on the testdata corpus and archives the result (BENCH_obs.json) so
// solver-work regressions show up as artifact diffs.
//
// Usage:
//
//	gntbench [-out BENCH_obs.json] [-timeout 30s] [-parallel N] dir [dir...]
//
// Each directory is walked recursively for *.f files. Every program
// gets a wall-clock budget (-timeout, default 30s); a program that
// exceeds it — or fails to parse, analyze, or verify — is recorded in
// the artifact as a per-entry error instead of hanging or aborting the
// whole corpus, and the run exits nonzero so CI still notices.
//
// With -parallel N the corpus additionally runs through the concurrent
// analysis engine on N workers, twice — a cold pass (every program
// misses the result cache and computes) and a warm pass (every program
// hits) — and the artifact grows a "timing" block comparing serial and
// parallel wall time plus the engine's cache counters. -assert-speedup
// X fails the run when serial/parallel falls below X; CI uses it (with
// tolerance below 1.0) to catch the parallel path regressing to slower
// than serial.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/engine"
	"givetake/internal/journal"
	"givetake/internal/obs"
	"givetake/internal/telemetry"

	gt "givetake"
)

// Schema identifies the artifact layout; bump on incompatible change.
// v2 added the static-verifier pass: a "check" phase span (wall time)
// plus the verifier work profile and finding counts per program.
// v3 added the per-program wall-clock guard: entries may carry an
// "error" field (with no report) instead of failing the whole run.
// v4 added the parallel-engine comparison: a "timing" block (serial vs
// parallel vs warm-cache corpus wall time) and the engine's cache
// counters, present when -parallel is given.
// v5 added the durable-journal comparison: a "journal" block with group
// commit flush latency, replay stats, and cold versus journal-warmed
// restart sweep wall times, present when -parallel is given.
// v6 added the telemetry block: the parallel sweeps run with the
// process metrics bridge attached, the exposition is scraped and
// strictly parsed throughout, and the artifact records the final gauge
// snapshot plus per-stage latency histogram summaries, present when
// -parallel is given.
// v7 added the pipeline block: the corpus streams through the engine's
// stage pipeline as one barrier-free batch, and the artifact records
// per-stage throughput plus the ratio of achieved corpus throughput to
// the slowest stage's service rate, present when -parallel is given.
const Schema = "gnt-bench/v7"

// DefaultTimeout is the per-program wall-clock budget.
const DefaultTimeout = 30 * time.Second

type artifact struct {
	Schema string  `json:"schema"`
	Corpus []entry `json:"corpus"`
	// Timing compares one serial corpus sweep against the engine's
	// parallel sweep (cold: all cache misses) and a repeat sweep (warm:
	// all cache hits). Speedup is serial over parallel cold wall time.
	Timing *timing `json:"timing,omitempty"`
	// Cache is the engine's cache counter snapshot after both sweeps;
	// with a single cold+warm cycle the hit rate lands at 0.5.
	Cache *engine.CacheStats `json:"cache,omitempty"`
	// Journal compares a cold restart against a journal-warmed restart:
	// an engine fills a journal, "dies", and a fresh engine replays the
	// log into its cache before sweeping again.
	Journal *journalBench `json:"journal,omitempty"`
	// Obs is the telemetry scrape of the parallel sweeps: gauge
	// snapshots and per-stage latency summaries from the same metrics
	// registry gnt -mode serve exposes at /metrics.
	Obs *obsBench `json:"obs,omitempty"`
	// Pipeline is the stage-pipeline sweep: the corpus as one
	// barrier-free batch, measured against the slowest stage's service
	// rate.
	Pipeline *pipelineBench `json:"pipeline,omitempty"`
}

// pipelineBench is the stage-pipeline block of the artifact. The sweep
// streams Items programs through AnalyzeBatch; IdealWallMS is the
// bottleneck bound — the largest per-stage busy-time-per-worker, i.e.
// how long the slowest stage alone needs to service the batch — and
// Ratio is IdealWallMS over the measured wall: 1.0 means throughput
// exactly tracks the slowest stage's service rate, lower means barrier
// or handoff overhead the pipeline design is supposed to avoid.
type pipelineBench struct {
	Items       int                 `json:"items"`
	WallMS      float64             `json:"wall_ms"`
	IdealWallMS float64             `json:"ideal_wall_ms"`
	Ratio       float64             `json:"ratio"`
	Shed        int64               `json:"shed"`
	Stages      []engine.StageStats `json:"stages"`
}

// obsBench is the telemetry block of the artifact. The parallel
// sweeps' engine reports through a telemetry.Bridge, a background
// scraper renders and strictly parses the exposition while the sweeps
// run (a malformed document fails the bench), and the final scrape is
// summarized here.
type obsBench struct {
	// Scrapes counts the strict mid-sweep parses, final scrape included.
	Scrapes int `json:"scrapes"`
	// Gauges is the final scrape's gauge value per family.
	Gauges map[string]float64 `json:"gauges"`
	// Stages summarizes gnt_stage_duration_seconds per stage label.
	Stages map[string]stageSummary `json:"stages"`
}

// stageSummary condenses one stage's latency histogram.
type stageSummary struct {
	Count  float64 `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// journalBench is the durable-journal block of the artifact.
type journalBench struct {
	// Flush latency of the journal's group commits during the fill
	// sweep, and what they sealed.
	FlushLastMS   float64 `json:"flush_last_ms"`
	FlushMaxMS    float64 `json:"flush_max_ms"`
	SealedBatches int64   `json:"sealed_batches"`
	SealedRecords int64   `json:"sealed_records"`
	SealedBytes   int64   `json:"sealed_bytes"`
	// Replay is the restarted engine's replay accounting (records
	// delivered, corruption skipped, wall time).
	Replay journal.ReplayStats `json:"replay"`
	// ColdWallMS is the fill sweep (every program computes and
	// journals); WarmRestartWallMS is the same sweep on the restarted,
	// replay-warmed engine (every program hits). RestartSpeedup is
	// their ratio: what the journal buys a restarted node.
	ColdWallMS        float64 `json:"cold_wall_ms"`
	WarmRestartWallMS float64 `json:"warm_restart_wall_ms"`
	RestartSpeedup    float64 `json:"restart_speedup"`
}

type timing struct {
	Parallel       int     `json:"parallel"`
	SerialWallMS   float64 `json:"serial_wall_ms"`
	ParallelWallMS float64 `json:"parallel_wall_ms"`
	WarmWallMS     float64 `json:"warm_wall_ms"`
	Speedup        float64 `json:"speedup"`
}

type entry struct {
	File   string      `json:"file"`
	Report *obs.Report `json:"report,omitempty"`
	// Error records why this program produced no report (timeout,
	// parse/analysis failure, verification failure).
	Error string `json:"error,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "output file (\"-\" for stdout)")
	timeout := flag.Duration("timeout", DefaultTimeout, "per-program wall-clock budget")
	parallel := flag.Int("parallel", 0, "also sweep the corpus through the engine on N workers (0 = serial only)")
	assertSpeedup := flag.Float64("assert-speedup", 0, "fail unless serial/parallel wall time >= this (0 = no assertion)")
	assertPipeline := flag.Float64("assert-pipeline", 0, "fail unless pipeline throughput / slowest-stage service rate >= this (0 = no assertion)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "gntbench: no corpus directories given")
		os.Exit(2)
	}
	if err := run(flag.Args(), *out, *timeout, *parallel, *assertSpeedup, *assertPipeline); err != nil {
		fmt.Fprintln(os.Stderr, "gntbench:", err)
		os.Exit(1)
	}
}

func run(dirs []string, out string, timeout time.Duration, parallel int, assertSpeedup, assertPipeline float64) error {
	files, err := collect(dirs)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no .f files under %v", dirs)
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	art := artifact{Schema: Schema}
	failed := 0
	serialStart := time.Now()
	for _, file := range files {
		rep, err := benchGuarded(file, timeout)
		e := entry{File: filepath.ToSlash(file), Report: rep}
		if err != nil {
			e.Error = err.Error()
			e.Report = nil
			failed++
			fmt.Fprintf(os.Stderr, "gntbench: %s: %v\n", file, err)
		}
		art.Corpus = append(art.Corpus, e)
	}
	serialWall := time.Since(serialStart)

	if parallel > 0 {
		tm, cs, ob, err := benchParallel(files, parallel, timeout, serialWall)
		if err != nil {
			return err
		}
		art.Timing, art.Cache, art.Obs = tm, cs, ob
		if assertSpeedup > 0 && tm.Speedup < assertSpeedup {
			return fmt.Errorf("parallel sweep too slow: speedup %.2f < required %.2f (serial %.1fms, parallel %.1fms)",
				tm.Speedup, assertSpeedup, tm.SerialWallMS, tm.ParallelWallMS)
		}
		jb, err := benchJournal(files, parallel, timeout)
		if err != nil {
			return err
		}
		art.Journal = jb
		pb, err := benchPipeline(files, parallel, timeout)
		if err != nil {
			return err
		}
		art.Pipeline = pb
		if assertPipeline > 0 && pb.Ratio < assertPipeline {
			return fmt.Errorf("pipeline sweep off the bottleneck bound: ratio %.2f < required %.2f (wall %.1fms, ideal %.1fms)",
				pb.Ratio, assertPipeline, pb.WallMS, pb.IdealWallMS)
		}
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		if _, err = os.Stdout.Write(b); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d corpus entries failed (errors recorded in artifact)",
			failed, len(files))
	}
	return nil
}

// benchGuarded runs one program under a wall-clock budget. The pipeline
// is cooperatively cancellable, so a timeout both returns promptly here
// and actually stops the work; the select is the backstop for any
// future non-cooperative stage.
func benchGuarded(file string, timeout time.Duration) (*obs.Report, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	type result struct {
		rep *obs.Report
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := bench(ctx, file)
		ch <- result{rep, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("timeout after %v: %w", timeout, r.err)
		}
		return r.rep, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("timeout after %v (stage did not cancel)", timeout)
	}
}

// collect walks the directories for .f programs, sorted for stable
// artifact ordering.
func collect(dirs []string) ([]string, error) {
	var files []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".f") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// bench runs the analysis pipeline once on a program, recording phase
// spans and solver counters, then statically re-verifies the placement.
// One-pass violations and verification errors fail the run: the
// artifact must never archive counters that break the O(E) claim, nor a
// corpus the verifier rejects.
func bench(ctx context.Context, file string) (*obs.Report, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	prog, err := gt.Parse(string(src))
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(obs.Config{Mem: true})
	a, err := comm.AnalyzeCtx(ctx, prog, rec)
	if err != nil {
		return nil, err
	}
	res, err := a.CheckPlacementCtx(ctx, rec)
	if err != nil {
		return nil, err
	}
	if !res.Ok() {
		return nil, fmt.Errorf("placement verification failed: %s", res.Errors()[0])
	}
	rep := &obs.Report{
		Program: filepath.ToSlash(file),
		Solver:  a.Counters(),
		Phases:  rec.Phases(),
	}
	for _, sc := range rep.Solver {
		if err := sc.OnePass(); err != nil {
			return nil, err
		}
	}
	checkExtra, err := json.Marshal(struct {
		Errors   int                    `json:"errors"`
		Warnings int                    `json:"warnings"`
		Stats    map[string]check.Stats `json:"stats"`
	}{len(res.Errors()), len(res.Warnings()), res.Stats})
	if err != nil {
		return nil, err
	}
	rep.Extra = map[string]json.RawMessage{"check": checkExtra}
	return rep, nil
}

// benchParallel sweeps the corpus through the concurrent engine twice:
// a cold pass where every program misses the result cache and runs the
// task-parallel pipeline (READ and WRITE halves solving concurrently,
// fan-out bounded by the worker count), then a warm pass where every
// program is served stored bytes. Any per-program failure fails the
// sweep — the serial pass already proved the corpus analyzes, so a
// parallel-only failure is an engine bug, not a corpus problem.
//
// The engine runs with the same telemetry bridge gnt -mode serve uses,
// and a background scraper renders and strictly parses the exposition
// throughout both sweeps; the final scrape becomes the artifact's obs
// block.
func benchParallel(files []string, workers int, timeout time.Duration, serialWall time.Duration) (*timing, *engine.CacheStats, *obsBench, error) {
	reg := telemetry.NewRegistry()
	bridge := telemetry.NewBridge(reg)
	e := engine.New(engine.Config{Workers: workers, Collector: bridge})
	defer e.Close()
	reg.GaugeFunc(obs.MetricPoolWorkers,
		"Size of the engine worker pool.",
		func() float64 { return float64(e.Workers()) })
	reg.GaugeFunc(obs.MetricPoolBusy,
		"Engine pool tasks executing right now.",
		func() float64 { return float64(e.Busy()) })
	reg.GaugeFunc(obs.MetricCacheEntries,
		"Resident result-cache entries.",
		func() float64 { return float64(e.Stats().Cache.Entries) })
	reg.GaugeFunc(obs.MetricCacheBytes,
		"Resident result-cache bytes.",
		func() float64 { return float64(e.Stats().Cache.Bytes) })
	ctx, cancel := context.WithTimeout(context.Background(), timeout*time.Duration(len(files)))
	defer cancel()

	sources, err := readSources(files)
	if err != nil {
		return nil, nil, nil, err
	}

	stop := make(chan struct{})
	type scraperReport struct {
		scrapes int
		err     error
	}
	scraperDone := make(chan scraperReport, 1)
	go func() {
		rep := scraperReport{}
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			if _, err := scrapeRegistry(reg); err != nil {
				rep.err = err
				scraperDone <- rep
				return
			}
			rep.scrapes++
			select {
			case <-stop:
				scraperDone <- rep
				return
			case <-tick.C:
			}
		}
	}()

	coldWall, err := sweepEngine(ctx, e, files, sources, bridge)
	if err != nil {
		close(stop)
		return nil, nil, nil, fmt.Errorf("parallel cold sweep: %w", err)
	}
	warmWall, err := sweepEngine(ctx, e, files, sources, bridge)
	close(stop)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parallel warm sweep: %w", err)
	}
	srep := <-scraperDone
	if srep.err != nil {
		return nil, nil, nil, fmt.Errorf("mid-sweep telemetry scrape: %w", srep.err)
	}
	fams, err := scrapeRegistry(reg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("final telemetry scrape: %w", err)
	}
	ob := buildObsBench(fams, srep.scrapes+1)

	cs := e.Stats().Cache
	tm := &timing{
		Parallel:       e.Workers(),
		SerialWallMS:   float64(serialWall.Microseconds()) / 1000,
		ParallelWallMS: float64(coldWall.Microseconds()) / 1000,
		WarmWallMS:     float64(warmWall.Microseconds()) / 1000,
	}
	if coldWall > 0 {
		tm.Speedup = float64(serialWall) / float64(coldWall)
	}
	if cs.Hits != int64(len(files)) || cs.Misses != int64(len(files)) {
		return nil, nil, nil, fmt.Errorf("cache counters off: %d hits %d misses, want %d each (single-flight or keying bug)",
			cs.Hits, cs.Misses, len(files))
	}
	if hits := fams.Sum(obs.MetricCacheEvents, map[string]string{"event": "hit"}); hits != float64(cs.Hits) {
		return nil, nil, nil, fmt.Errorf("telemetry cache-hit counter %v disagrees with engine stats %d",
			hits, cs.Hits)
	}
	return tm, &cs, ob, nil
}

// scrapeRegistry renders the registry's exposition and runs it through
// the same strict parser the serve tests and CI smoke use — gntbench
// doubles as a continuous format check on the metrics encoder.
func scrapeRegistry(reg *telemetry.Registry) (telemetry.Families, error) {
	var buf bytes.Buffer
	if err := reg.Expose(&buf); err != nil {
		return nil, err
	}
	return telemetry.ParseExposition(&buf)
}

// buildObsBench condenses one parsed exposition into the artifact's
// obs block: every gauge family's value, and count/sum/mean per stage
// of the stage-latency histogram.
func buildObsBench(fams telemetry.Families, scrapes int) *obsBench {
	ob := &obsBench{
		Scrapes: scrapes,
		Gauges:  map[string]float64{},
		Stages:  map[string]stageSummary{},
	}
	for name, f := range fams {
		if f.Type == "gauge" {
			ob.Gauges[name] = fams.Sum(name, nil)
		}
	}
	counts := map[string]float64{}
	sums := map[string]float64{}
	if f := fams[obs.MetricStageDuration]; f != nil {
		for _, s := range f.Samples {
			stage := s.Labels["stage"]
			switch {
			case strings.HasSuffix(s.Name, "_count"):
				counts[stage] += s.Value
			case strings.HasSuffix(s.Name, "_sum"):
				sums[stage] += s.Value
			}
		}
	}
	for stage, c := range counts {
		sm := stageSummary{Count: c, SumMS: sums[stage] * 1000}
		if c > 0 {
			sm.MeanMS = sm.SumMS / c
		}
		ob.Stages[stage] = sm
	}
	return ob
}

// readSources loads the corpus files once for the engine sweeps.
func readSources(files []string) ([]string, error) {
	sources := make([]string, len(files))
	for i, file := range files {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		sources[i] = string(b)
	}
	return sources, nil
}

// sweepEngine runs the whole corpus through e's cache-fronted pipeline
// once, with fan-out bounded by the worker count, and returns the
// sweep's wall time. Any per-program failure fails the sweep. col (may
// be nil) receives each job's pipeline stage spans.
func sweepEngine(ctx context.Context, e *engine.Engine, files, sources []string, col obs.Collector) (time.Duration, error) {
	errs := make([]error, len(files))
	start := time.Now()
	e.Map(ctx, len(files), func(ctx context.Context, i int) {
		key := engine.CacheKey(sources[i], comm.Opts{})
		_, _, err := e.Do(ctx, key, func(ctx context.Context) (engine.Cached, bool, error) {
			prog, err := gt.Parse(sources[i])
			if err != nil {
				return engine.Cached{}, false, err
			}
			res, err := e.Analyze(ctx, engine.Job{Prog: prog, Collector: col})
			if err != nil {
				return engine.Cached{}, false, err
			}
			defer res.Release()
			if !res.Check.Ok() {
				return engine.Cached{}, false, fmt.Errorf("verification failed: %s", res.Check.Errors()[0])
			}
			body, err := json.Marshal(struct {
				Annotated string `json:"annotated"`
				Warnings  int    `json:"warnings"`
			}{res.Analysis.AnnotatedSource(comm.DefaultOptions), len(res.Check.Warnings())})
			if err != nil {
				return engine.Cached{}, false, err
			}
			return engine.Cached{Status: 200, Body: body}, true, nil
		})
		errs[i] = err
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("%s: %w", files[i], err)
		}
	}
	return time.Since(start), nil
}

// benchJournal measures what the durable journal buys a restarted node:
// engine 1 sweeps the corpus cold, filling a journal as it goes, and
// shuts down gracefully; engine 2 opens the same storage, replays the
// log into its cache, and sweeps again — every program a hit, no
// analysis recomputed. The block records group-commit flush latency,
// replay accounting, and the two sweeps' wall times.
func benchJournal(files []string, workers int, timeout time.Duration) (*journalBench, error) {
	sources, err := readSources(files)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout*time.Duration(len(files)))
	defer cancel()

	mb := journal.NewMemBackend()
	j1, err := journal.Open(journal.Config{Backend: mb})
	if err != nil {
		return nil, err
	}
	e1 := engine.New(engine.Config{Workers: workers, Journal: j1})
	coldWall, err := sweepEngine(ctx, e1, files, sources, nil)
	e1.Close()
	if err != nil {
		j1.Abort()
		return nil, fmt.Errorf("journal fill sweep: %w", err)
	}
	if err := j1.Close(); err != nil { // graceful drain: seal the tail
		return nil, fmt.Errorf("journal drain: %w", err)
	}
	jstats := j1.Stats()

	j2, err := journal.Open(journal.Config{Backend: mb})
	if err != nil {
		return nil, err
	}
	defer j2.Close()
	e2 := engine.New(engine.Config{Workers: workers, Journal: j2})
	defer e2.Close()
	rs, err := e2.WarmFromJournal(ctx)
	if err != nil {
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	if rs.Records != int64(len(files)) || rs.Corrupt() {
		return nil, fmt.Errorf("replay delivered %d records with %d corrupt batches, want %d clean (stats %+v)",
			rs.Records, rs.CorruptBatches, len(files), rs)
	}
	warmWall, err := sweepEngine(ctx, e2, files, sources, nil)
	if err != nil {
		return nil, fmt.Errorf("journal-warmed sweep: %w", err)
	}
	if cs := e2.Stats().Cache; cs.Hits != int64(len(files)) || cs.Misses != 0 {
		return nil, fmt.Errorf("journal-warmed sweep recomputed: %d hits %d misses, want %d/0",
			cs.Hits, cs.Misses, len(files))
	}

	jb := &journalBench{
		FlushLastMS:       jstats.LastFlushMS,
		FlushMaxMS:        jstats.MaxFlushMS,
		SealedBatches:     jstats.SealedBatches,
		SealedRecords:     jstats.SealedRecords,
		SealedBytes:       jstats.SealedBytes,
		Replay:            rs,
		ColdWallMS:        float64(coldWall.Microseconds()) / 1000,
		WarmRestartWallMS: float64(warmWall.Microseconds()) / 1000,
	}
	if warmWall > 0 {
		jb.RestartSpeedup = float64(coldWall) / float64(warmWall)
	}
	return jb, nil
}

// registerPipelineGauges installs the same scrape-time pipeline gauges
// gnt -mode serve exposes, reading the engine's live per-stage stats.
func registerPipelineGauges(reg *telemetry.Registry, e *engine.Engine) {
	sample := func(field func(engine.StageStats) float64) func() []telemetry.GaugeSample {
		return func() []telemetry.GaugeSample {
			stats := e.PipelineStats()
			out := make([]telemetry.GaugeSample, 0, len(stats))
			for _, st := range stats {
				out = append(out, telemetry.GaugeSample{
					LabelVals: []string{st.Stage},
					Value:     field(st),
				})
			}
			return out
		}
	}
	reg.GaugeSeriesFunc(obs.MetricPipelineQueueDepth,
		"Tasks waiting in each pipeline stage's bounded input queue.",
		[]string{"stage"}, sample(func(st engine.StageStats) float64 { return float64(st.QueueDepth) }))
	reg.GaugeSeriesFunc(obs.MetricPipelineOccupancy,
		"Pipeline stage workers executing a task right now.",
		[]string{"stage"}, sample(func(st engine.StageStats) float64 { return float64(st.Busy) }))
	reg.GaugeSeriesFunc(obs.MetricPipelineWorkers,
		"Configured worker count of each pipeline stage.",
		[]string{"stage"}, sample(func(st engine.StageStats) float64 { return float64(st.Workers) }))
}

// benchPipeline streams the corpus (repeated to amortize pipeline
// ramp-up) through the engine's stage pipeline as one barrier-free
// batch and measures corpus throughput against the slowest stage's
// service rate. The telemetry bridge and the pipeline gauges are
// attached and strictly scraped throughout, and the sweep fails if any
// gnt_pipeline_* family is missing from the final exposition or the
// per-stage item counters disagree with the batch size.
func benchPipeline(files []string, workers int, timeout time.Duration) (*pipelineBench, error) {
	sources, err := readSources(files)
	if err != nil {
		return nil, err
	}
	rounds := 216 / len(files)
	if rounds < 1 {
		rounds = 1
	}
	items := make([]engine.BatchItem, 0, rounds*len(files))
	for r := 0; r < rounds; r++ {
		for _, src := range sources {
			items = append(items, engine.BatchItem{Source: src})
		}
	}

	reg := telemetry.NewRegistry()
	bridge := telemetry.NewBridge(reg)
	e := engine.New(engine.Config{Workers: workers, Collector: bridge})
	defer e.Close()
	registerPipelineGauges(reg, e)

	ctx, cancel := context.WithTimeout(context.Background(), timeout*time.Duration(len(files)))
	defer cancel()

	stop := make(chan struct{})
	type scraperReport struct {
		scrapes int
		err     error
	}
	scraperDone := make(chan scraperReport, 1)
	go func() {
		rep := scraperReport{}
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			if _, err := scrapeRegistry(reg); err != nil {
				rep.err = err
				scraperDone <- rep
				return
			}
			rep.scrapes++
			select {
			case <-stop:
				scraperDone <- rep
				return
			case <-tick.C:
			}
		}
	}()

	start := time.Now()
	out := e.AnalyzeBatch(ctx, items, bridge)
	wall := time.Since(start)
	close(stop)
	for i, r := range out {
		if r.Err != nil {
			return nil, fmt.Errorf("pipeline sweep item %d (%s): %w", i, files[i%len(files)], r.Err)
		}
		if !r.Res.Check.Ok() {
			r.Res.Release()
			return nil, fmt.Errorf("pipeline sweep item %d (%s): verification failed", i, files[i%len(files)])
		}
		r.Res.Release()
	}
	srep := <-scraperDone
	if srep.err != nil {
		return nil, fmt.Errorf("mid-sweep telemetry scrape: %w", srep.err)
	}
	fams, err := scrapeRegistry(reg)
	if err != nil {
		return nil, fmt.Errorf("final telemetry scrape: %w", err)
	}
	for _, name := range []string{
		obs.MetricPipelineItems, obs.MetricPipelineShed,
		obs.MetricPipelineQueueDepth, obs.MetricPipelineOccupancy,
		obs.MetricPipelineWorkers,
	} {
		if fams[name] == nil {
			return nil, fmt.Errorf("pipeline family %s missing from exposition", name)
		}
	}

	stages := e.PipelineStats()
	if got, want := fams.Sum(obs.MetricPipelineItems, nil), float64(len(items)*len(stages)); got != want {
		return nil, fmt.Errorf("%s sums to %v, want %v (items x stages)",
			obs.MetricPipelineItems, got, want)
	}
	pb := &pipelineBench{
		Items:  len(items),
		WallMS: float64(wall.Microseconds()) / 1000,
		Shed:   e.PipelineShed(),
		Stages: stages,
	}
	for _, st := range stages {
		if st.Items != int64(len(items)) {
			return nil, fmt.Errorf("stage %s serviced %d items, want %d", st.Stage, st.Items, len(items))
		}
		if per := st.BusyMS / float64(st.Workers); per > pb.IdealWallMS {
			pb.IdealWallMS = per
		}
	}
	if pb.WallMS > 0 {
		pb.Ratio = pb.IdealWallMS / pb.WallMS
	}
	return pb, nil
}
