// Benchmarks regenerating the paper's evaluation artifacts (experiments
// E1–E9 of DESIGN.md / EXPERIMENTS.md). The paper has no numeric tables;
// its evaluation is the worked figures plus the O(E) complexity claim, so
// each benchmark both times the relevant pipeline stage and reports the
// figures' headline quantities as custom metrics.
package givetake_test

import (
	"fmt"
	"testing"

	gt "givetake"
	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/comm"
	"givetake/internal/core"
	"givetake/internal/frontend"
	"givetake/internal/interval"
	"givetake/internal/machine"
	"givetake/internal/pre"
	"givetake/internal/progen"
)

const fig1Src = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

const fig3Src = `
distributed x(1000)
real a(1000)

if test then
    do i = 1, n
        x(a(i)) = ...
    enddo
    do j = 1, n
        ... = x(j+5)
    enddo
endif
do k = 1, n
    ... = x(k+5)
enddo
`

const fig11Src = `
distributed x(1000), y(1000)
real a(1000), b(1000)

do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`

func mustParse(b *testing.B, src string) *gt.Program {
	b.Helper()
	p, err := gt.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig2ReadPlacement — experiment E1 (Figures 1 and 2): the READ
// problem on Figure 1's code. Reported metrics: dynamic message counts
// at N=100 for the naive per-element placement (= N) and GIVE-N-TAKE
// (= 1 vectorized message), and the send→recv distance hiding the
// latency behind the i-loop.
func BenchmarkFig2ReadPlacement(b *testing.B) {
	prog := mustParse(b, fig1Src)
	var cg *gt.CommGen
	var err error
	for i := 0; i < b.N; i++ {
		if cg, err = gt.GenerateComm(prog); err != nil {
			b.Fatal(err)
		}
	}
	cfgN := gt.ExecConfig{N: 100, Seed: 3}
	naive, _ := gt.Execute(gt.NaiveComm(prog, gt.AtomicComm), cfgN)
	split, _ := gt.Execute(cg.Annotate(gt.SplitComm), cfgN)
	_, dist, _ := split.OverlapStats()
	b.ReportMetric(float64(naive.Messages()), "naive-msgs")
	b.ReportMetric(float64(split.Messages()), "gnt-msgs")
	b.ReportMetric(float64(dist), "overlap-steps")
}

// BenchmarkFig3WritePlacement — experiment E2 (Figure 3): WRITE placement
// with relaxed owner-computes; metrics are the write-back and re-read
// message counts at N=100 (vectorized: 3 total — one write, two reads on
// the taken path).
func BenchmarkFig3WritePlacement(b *testing.B) {
	prog := mustParse(b, fig3Src)
	var cg *gt.CommGen
	var err error
	for i := 0; i < b.N; i++ {
		if cg, err = gt.GenerateComm(prog); err != nil {
			b.Fatal(err)
		}
	}
	cfgN := gt.ExecConfig{N: 100, Seed: 1, Scalars: map[string]int64{"test": 1}}
	naive, _ := gt.Execute(gt.NaiveComm(prog, gt.AtomicComm), cfgN)
	split, _ := gt.Execute(cg.Annotate(gt.SplitComm), cfgN)
	b.ReportMetric(float64(naive.Messages()), "naive-msgs")
	b.ReportMetric(float64(split.Messages()), "gnt-msgs")
}

// BenchmarkFig12Solve — experiment E3 (Figures 11/12/14): the solver on
// the paper's worked 14-node interval flow graph (the golden §4 values
// are asserted by internal/core's tests; here the full READ+WRITE
// pipeline is timed).
func BenchmarkFig12Solve(b *testing.B) {
	prog := mustParse(b, fig11Src)
	g, err := gt.BuildGraph(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(g.Nodes)), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gt.GenerateComm(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCriteriaScenarios — experiment E4 (Figures 4–10): solve and
// path-verify the seven criteria scenarios; the benchmark fails if any
// correctness criterion is violated.
func BenchmarkCriteriaScenarios(b *testing.B) {
	srcs := []string{
		"if c then\n s = x(1)\nendif\nr = 2",                          // Fig 5: safety
		"if c then\n a = 1\nelse\n b = 2\nendif\ns = x(1)",            // Fig 6: sufficiency
		"s = x(1)\nt = x(2)\nr = x(3)",                                // Fig 7: no re-production
		"if c then\n s = x(1)\nelse\n t = x(2)\nendif\nr = x(3)",      // Fig 8: few producers
		"a = 1\nb = 2\ns = x(1)",                                      // Figs 9/10: early/late
		"if c then\n a = 1\n s = x(1)\nelse\n b = 2\nendif\nr = x(2)", // Fig 4: balance
		"a = 1\ndo i = 1, n\n s = x(i)\nenddo",                        // zero-trip hoist
	}
	type inst struct {
		g    *interval.Graph
		init *core.Init
	}
	var instances []inst
	for _, src := range srcs {
		prog, err := frontend.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		c, err := cfg.Build(prog)
		if err != nil {
			b.Fatal(err)
		}
		g, err := interval.FromCFG(c)
		if err != nil {
			b.Fatal(err)
		}
		init := core.NewInit(len(g.Nodes))
		for _, n := range g.Nodes {
			if n.Block.Kind == cfg.KStmt && len(n.Block.String()) > 0 {
				// every x(...) reference in the scenario consumes item 0
				if containsX(n.Block.String()) {
					init.AddTake(n, 1, bitset.Of(1, 0))
				}
			}
		}
		instances = append(instances, inst{g, init})
	}
	violations := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range instances {
			s := core.MustSolve(in.g, 1, in.init)
			violations += len(core.Verify(s, in.init, core.VerifyConfig{CheckSafety: true}))
		}
	}
	if violations != 0 {
		b.Fatalf("criteria violations: %d", violations)
	}
	b.ReportMetric(0, "violations")
}

func containsX(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == 'x' && s[i+1] == '(' {
			return true
		}
	}
	return false
}

// BenchmarkFig16AfterJump — experiment E5 (Figure 16 / §5.3): an AFTER
// problem on a program with a jump out of a loop; the reversed graph has
// a jump into the loop and the no-hoist guard must keep the placement
// balanced and sufficient.
func BenchmarkFig16AfterJump(b *testing.B) {
	prog := mustParse(b, `
do i = 1, n
    x(i) = 5
    if test(i) goto 9
enddo
9 b = 2
`)
	c, err := cfg.Build(prog)
	if err != nil {
		b.Fatal(err)
	}
	g, err := interval.FromCFG(c)
	if err != nil {
		b.Fatal(err)
	}
	init := core.NewInit(len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Block.Kind == cfg.KStmt && containsX(n.Block.String()) {
			init.AddTake(n, 1, bitset.Of(1, 0))
		}
	}
	bad := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev, err := interval.Reverse(g)
		if err != nil {
			b.Fatal(err)
		}
		s := core.MustSolve(rev, 1, init)
		for _, v := range core.Verify(s, init, core.VerifyConfig{}) {
			if v.Criterion != "O1" {
				bad++
			}
		}
	}
	if bad != 0 {
		b.Fatalf("correctness violations: %d", bad)
	}
	b.ReportMetric(0, "violations")
}

// BenchmarkScaling — experiment E6 (§5.2): solver work is linear in
// program size. Sub-benchmarks solve generated programs of growing size;
// ns/op divided by the node metric should stay roughly constant, and
// eq-evals/node is exactly 20 by construction.
func BenchmarkScaling(b *testing.B) {
	for _, stmts := range []int{100, 400, 1600, 6400} {
		b.Run(fmt.Sprintf("stmts=%d", stmts), func(b *testing.B) {
			prog := progen.Generate(42, progen.Config{Stmts: stmts, MaxDepth: 4})
			c, err := cfg.Build(prog)
			if err != nil {
				b.Fatal(err)
			}
			g, err := interval.FromCFG(c)
			if err != nil {
				b.Fatal(err)
			}
			const universe = 64
			init := core.NewInit(len(g.Nodes))
			for i, n := range g.Nodes {
				if n.Block.Kind == cfg.KStmt {
					init.AddTake(n, universe, bitset.Of(universe, i%universe))
					if i%7 == 0 {
						init.AddSteal(n, universe, bitset.Of(universe, (i+3)%universe))
					}
				}
			}
			var evals int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := core.MustSolve(g, universe, init)
				evals = s.EquationEvals
			}
			b.ReportMetric(float64(len(g.Nodes)), "nodes")
			b.ReportMetric(float64(evals)/float64(len(g.Nodes)), "eq-evals/node")
		})
	}
}

// BenchmarkPREComparison — experiment E7 (§1): classical PRE as a
// GIVE-N-TAKE instance versus Morel–Renvoise and Lazy Code Motion over a
// corpus of generated programs. Metrics: total weighted insertion cost
// (Σ 10^loopdepth) per analysis — lower is better; GNT wins on the
// zero-trip hoisting cases — and the fixpoint sweep counts of the
// iterative baselines versus the single-pass solver.
func BenchmarkPREComparison(b *testing.B) {
	var problems []*pre.Problem
	for seed := int64(0); seed < 20; seed++ {
		prog := progen.Generate(seed, progen.Config{Stmts: 40, MaxDepth: 3, Exprs: true})
		g, err := cfg.Build(prog)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := pre.BuildProblem(g)
		problems = append(problems, p)
	}
	var wLCM, wMR, wGNT float64
	var itersLCM, itersMR int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wLCM, wMR, wGNT, itersLCM, itersMR = 0, 0, 0, 0, 0
		for _, p := range problems {
			lcm := p.LazyCodeMotion()
			mr := p.MorelRenvoise()
			gnt, _, err := p.GiveNTake()
			if err != nil {
				b.Fatal(err)
			}
			wLCM += weightedComputations(p, lcm)
			wMR += weightedComputations(p, mr)
			wGNT += weightedComputations(p, gnt)
			itersLCM += lcm.Iterations
			itersMR += mr.Iterations
		}
	}
	b.ReportMetric(wLCM, "lcm-weighted")
	b.ReportMetric(wMR, "mr-weighted")
	b.ReportMetric(wGNT, "gnt-weighted")
	b.ReportMetric(float64(itersLCM), "lcm-sweeps")
	b.ReportMetric(float64(itersMR), "mr-sweeps")
}

// weightedComputations scores where the transformed program evaluates
// expressions: Σ over effective computation points of 10^loopdepth.
func weightedComputations(p *pre.Problem, pl *pre.Placement) float64 {
	depth := pre.LoopDepths(p.G)
	total := 0.0
	for id, set := range p.Computations(pl) {
		w := 1.0
		for i := 0; i < depth[id]; i++ {
			w *= 10
		}
		total += float64(set.Count()) * w
	}
	return total
}

// BenchmarkSideEffectSavings — experiment E8 (§3.1): local definitions
// produce "for free" (GIVE_init); the same program solved with the side
// effects ignored needs strictly more communication.
func BenchmarkSideEffectSavings(b *testing.B) {
	prog := mustParse(b, `
distributed x(1000)
real a(1000)

do i = 1, n
    x(i) = a(i)
enddo
do k = 1, n
    ... = x(k)
enddo
`)
	var withGive, withoutGive int
	for i := 0; i < b.N; i++ {
		cg, err := comm.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		count := func(s *core.Solution) int {
			n := 0
			for _, set := range s.Lazy.ResIn {
				n += set.Count()
			}
			for _, set := range s.Lazy.ResOut {
				n += set.Count()
			}
			return n
		}
		withGive = count(cg.Read)
		// ablation: drop the free production and re-solve
		blind := core.NewInit(len(cg.Graph.Nodes))
		blind.Take = cg.ReadInit.Take
		blind.Steal = cg.ReadInit.Steal
		withoutGive = count(core.MustSolve(cg.Graph, cg.Universe.Size(), blind))
	}
	b.ReportMetric(float64(withGive), "reads-with-give")
	b.ReportMetric(float64(withoutGive), "reads-without-give")
	if withGive >= withoutGive {
		b.Fatalf("side effects saved nothing: %d vs %d", withGive, withoutGive)
	}
}

// BenchmarkMachineModel — experiment E9 (§2): end-to-end machine-model
// costs for the three placements on a stencil-plus-gather workload.
// Shape to reproduce: naive ≫ atomic > split on the high-latency model,
// and the ordering persists (smaller) on the low-latency model.
func BenchmarkMachineModel(b *testing.B) {
	prog := mustParse(b, `
distributed x(4000), y(4000)
real a(4000), w(4000)

do t = 1, 4
    do k = 1, n
        w(k) = x(a(k)) + y(k+1)
    enddo
    do k = 1, n
        x(a(k)) = w(k)
    enddo
enddo
`)
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		b.Fatal(err)
	}
	run := gt.ExecConfig{N: 512, Seed: 7}
	variants := map[string]*gt.Program{
		"naive":  gt.NaiveComm(prog, gt.AtomicComm),
		"atomic": cg.Annotate(gt.AtomicComm),
		"split":  cg.Annotate(gt.SplitComm),
	}
	totals := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, p := range variants {
			tr, err := gt.Execute(p, run)
			if err != nil {
				b.Fatal(err)
			}
			totals[name] = machine.HighLatency.Cost(tr).Total
		}
	}
	for name, total := range totals {
		b.ReportMetric(total, name+"-total")
	}
	if !(totals["naive"] > totals["atomic"] && totals["atomic"] >= totals["split"]) {
		b.Fatalf("cost ordering broken: %v", totals)
	}
}

// BenchmarkPipelineScaling times the full pipeline — parse-free: CFG
// build, interval analysis, universe construction, both placement
// problems — over generated distributed-array programs, complementing
// BenchmarkScaling's solver-only numbers for the E6 linearity claim.
func BenchmarkPipelineScaling(b *testing.B) {
	for _, stmts := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("stmts=%d", stmts), func(b *testing.B) {
			prog := progen.Generate(9, progen.Config{Stmts: stmts, MaxDepth: 3, Arrays: true})
			var nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := comm.Analyze(prog)
				if err != nil {
					b.Fatal(err)
				}
				nodes = len(a.Graph.Nodes)
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkShiftAblation — DESIGN.md's §5.4 ablation: how many
// productions sit on synthetic nodes (requiring new basic blocks at code
// generation) before and after the shifting post-pass, over a corpus of
// generated problems.
func BenchmarkShiftAblation(b *testing.B) {
	type inst struct {
		g    *interval.Graph
		init *core.Init
	}
	var instances []inst
	for seed := int64(0); seed < 30; seed++ {
		prog := progen.Generate(seed, progen.Config{Stmts: 30, MaxDepth: 3})
		c, err := cfg.Build(prog)
		if err != nil {
			b.Fatal(err)
		}
		g, err := interval.FromCFG(c)
		if err != nil {
			b.Fatal(err)
		}
		const u = 3
		init := core.NewInit(len(g.Nodes))
		for i, n := range g.Nodes {
			if n.Block.Kind == cfg.KStmt {
				switch i % 5 {
				case 0:
					init.AddTake(n, u, bitset.Of(u, i%u))
				case 1:
					init.AddSteal(n, u, bitset.Of(u, (i+1)%u))
				}
			}
		}
		instances = append(instances, inst{g, init})
	}
	var before, after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before, after = 0, 0
		for _, in := range instances {
			s := core.MustSolve(in.g, 3, in.init)
			before += s.SyntheticResidue(core.Eager) + s.SyntheticResidue(core.Lazy)
			s.ShiftOffSynthetic()
			after += s.SyntheticResidue(core.Eager) + s.SyntheticResidue(core.Lazy)
		}
	}
	b.ReportMetric(float64(before), "pad-productions-before")
	b.ReportMetric(float64(after), "pad-productions-after")
}

// BenchmarkCoalescing — message-count ablation for contiguous-section
// coalescing on a strip-mined sweep.
func BenchmarkCoalescing(b *testing.B) {
	prog := mustParse(b, `
distributed x(100)
real w(100)

do i = 1, 20
    w(i) = x(i)
enddo
do i = 21, 40
    w(i) = x(i)
enddo
do i = 41, 60
    w(i) = x(i)
enddo
`)
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		b.Fatal(err)
	}
	var plain, merged int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trPlain, err := gt.Execute(cg.Annotate(gt.CommOptions{Reads: true, Split: true}), gt.ExecConfig{N: 60})
		if err != nil {
			b.Fatal(err)
		}
		trMerged, err := gt.Execute(cg.Annotate(gt.CommOptions{Reads: true, Split: true, Coalesce: true}), gt.ExecConfig{N: 60})
		if err != nil {
			b.Fatal(err)
		}
		plain, merged = trPlain.Messages(), trMerged.Messages()
	}
	b.ReportMetric(float64(plain), "msgs-plain")
	b.ReportMetric(float64(merged), "msgs-coalesced")
	if merged >= plain {
		b.Fatalf("coalescing saved nothing: %d vs %d", merged, plain)
	}
}
