#!/usr/bin/env bash
# crash_smoke.sh — end-to-end kill -9 recovery check for gnt -mode serve.
#
# Starts the service with a file-backed journal, drives traffic through
# it, kills the process with SIGKILL (no drain, no flush), restarts it
# on the same journal directory, waits for /readyz, and asserts the
# pre-crash working set is served warm (X-Gnt-Cache: hit) with bodies
# byte-identical to what the first process served.
#
# Usage: scripts/crash_smoke.sh [port]
set -euo pipefail

PORT="${1:-8099}"
ADDR="127.0.0.1:${PORT}"
URL="http://${ADDR}"
WORK="$(mktemp -d)"
JDIR="${WORK}/journal"
REQUESTS=100
PID=""

cleanup() {
  [ -n "${PID}" ] && kill -9 "${PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

say() { echo "crash_smoke: $*"; }

go build -o "${WORK}/gnt" ./cmd/gnt
say "built gnt"

start_server() {
  "${WORK}/gnt" -mode serve -addr "${ADDR}" -journal-dir "${JDIR}" \
    -journal-flush-ms 5 2>>"${WORK}/serve.log" &
  PID=$!
}

wait_ready() {
  for _ in $(seq 1 200); do
    if curl -sf "${URL}/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  say "server never became ready"; cat "${WORK}/serve.log"; exit 1
}

# one distinct valid program per index
req_body() {
  printf '{"source":"distributed x(1000)\\nreal y(1000)\\n\\ndo i = 1, n\\n    y(i) = x(i) + %d\\nenddo\\n"}' "$1"
}

start_server
wait_ready
say "server up (pid ${PID}), sending ${REQUESTS} requests"

mkdir -p "${WORK}/cold"
for i in $(seq 1 "${REQUESTS}"); do
  code=$(curl -s -o "${WORK}/cold/${i}.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d "$(req_body "${i}")" "${URL}/analyze")
  [ "${code}" = "200" ] || { say "request ${i} got HTTP ${code}"; exit 1; }
done

# let the 5ms group commit seal the tail, then SIGKILL: no drain
sleep 0.5
say "killing pid ${PID} with SIGKILL"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""

start_server
wait_ready
say "restarted (pid ${PID}); replay complete"

replayed=$(curl -s "${URL}/readyz" | sed -n 's/.*"replayed":\([0-9]*\).*/\1/p')
say "journal replayed ${replayed} records"
[ "${replayed:-0}" -ge 1 ] || { say "nothing replayed; journal did not persist"; exit 1; }

hits=0
for i in $(seq 1 "${REQUESTS}"); do
  hdr=$(curl -s -D - -o "${WORK}/warm.json" \
    -X POST -H 'Content-Type: application/json' \
    -d "$(req_body "${i}")" "${URL}/analyze" | tr -d '\r')
  disp=$(echo "${hdr}" | sed -n 's/^X-Gnt-Cache: //Ip')
  if [ "${disp}" = "hit" ]; then
    cmp -s "${WORK}/cold/${i}.json" "${WORK}/warm.json" \
      || { say "request ${i}: warm bytes differ from pre-crash serve"; exit 1; }
    hits=$((hits + 1))
  fi
done

say "${hits}/${REQUESTS} served warm and byte-identical after kill -9"
# the crash may lose the last unsealed batch; everything sealed must hit
[ "${hits}" -ge "${replayed}" ] || { say "replayed ${replayed} but only ${hits} hits"; exit 1; }
[ "${hits}" -ge $((REQUESTS / 2)) ] || { say "too few warm hits (${hits}); recovery is not working"; exit 1; }
say "OK"
