#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end failover check for gnt -mode route.
#
# Boots three serve nodes and a router with replica factor 2, verifies
# the routed answers are byte-identical to a single node's, then drives
# open-loop load through the router while one node dies with SIGKILL
# mid-run. Asserts the run finishes with zero 5xx (the breaker plus
# replica failover absorb the loss), that the router actually failed
# over (failovers metric > 0), and that answers are still byte-identical
# to the single-node reference afterward.
#
# Usage: scripts/cluster_smoke.sh [baseport]
set -euo pipefail

BASE="${1:-8180}"
N1="127.0.0.1:$((BASE + 1))"
N2="127.0.0.1:$((BASE + 2))"
N3="127.0.0.1:$((BASE + 3))"
ROUTER="127.0.0.1:${BASE}"
RURL="http://${ROUTER}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "${WORK}"
}
trap cleanup EXIT

say() { echo "cluster_smoke: $*"; }

go build -o "${WORK}/gnt" ./cmd/gnt
go build -o "${WORK}/gntload" ./cmd/gntload
say "built gnt and gntload"

start_node() { # $1 addr, $2 log
  "${WORK}/gnt" -mode serve -addr "$1" 2>>"${WORK}/$2" &
  PIDS+=($!)
}

wait_ready() { # $1 url
  for _ in $(seq 1 200); do
    if curl -sf "$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  say "$1 never became ready"
  cat "${WORK}"/*.log || true
  exit 1
}

start_node "${N1}" node1.log
start_node "${N2}" node2.log
start_node "${N3}" node3.log
NODE1_PID="${PIDS[0]}"
wait_ready "http://${N1}"
wait_ready "http://${N2}"
wait_ready "http://${N3}"
say "3 nodes up"

"${WORK}/gnt" -mode route -addr "${ROUTER}" -nodes "${N1},${N2},${N3}" \
  -replicas 2 -probe-ms 100 2>>"${WORK}/route.log" &
PIDS+=($!)
wait_ready "${RURL}"
say "router up on ${ROUTER}"

# phase 1: routed answers must match a single node byte-for-byte
"${WORK}/gntload" -url "${RURL}" -verify-against "http://${N1}" \
  -rate 50 -duration 1s -keys 24 >"${WORK}/pre.json"
say "pre-kill: routed answers identical to single-node serve"

# phase 2: load with a mid-run SIGKILL of node 1. The router probes at
# 100ms with a failure threshold of 3, so the breaker opens ~300ms
# after the kill; replica factor 2 means every key on node 1 has a
# warm-path fallback. Open-loop load keeps arriving the whole time.
(
  sleep 2
  say "killing node 1 (pid ${NODE1_PID}) with SIGKILL"
  kill -9 "${NODE1_PID}" 2>/dev/null || true
) &
KILLER=$!

"${WORK}/gntload" -url "${RURL}" -rate 80 -duration 6s -keys 24 \
  -assert-no-5xx >"${WORK}/load.json" \
  || { say "load saw 5xx during failover"; cat "${WORK}/load.json"; exit 1; }
wait "${KILLER}"
say "survived SIGKILL mid-run with zero 5xx"

# the router must have actually routed around the dead node
failovers=$(curl -s "${RURL}/metrics" | sed -n 's/^gnt_route_failovers_total{[^}]*} \([0-9.]*\)$/\1/p' \
  | awk '{s += $1} END {printf "%d", s}')
say "router recorded ${failovers} failovers"
[ "${failovers:-0}" -ge 1 ] || { say "no failovers recorded; did the kill land?"; exit 1; }

# phase 3: with one node gone, answers must still match the reference
"${WORK}/gntload" -url "${RURL}" -verify-against "http://${N2}" \
  -rate 50 -duration 1s -keys 24 >"${WORK}/post.json"
say "post-kill: routed answers still identical to single-node serve"

say "OK"
