#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end telemetry check for gnt -mode serve.
#
# Starts the service, drives a couple of requests through it, scrapes
# /metrics, and validates the exposition with promcheck's strict
# parser: the document must parse under the strict grammar, the core
# gnt_* families must be present with their declared types, and the
# counters must account for the traffic just sent. Also asserts the
# trace plumbing end to end: the response echoes the request's
# X-Gnt-Trace ID and /debug/requests can return that trace by ID.
#
# Usage: scripts/metrics_smoke.sh [port]
set -euo pipefail

PORT="${1:-8098}"
ADDR="127.0.0.1:${PORT}"
URL="http://${ADDR}"
WORK="$(mktemp -d)"
PID=""

cleanup() {
  [ -n "${PID}" ] && kill "${PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

say() { echo "metrics_smoke: $*"; }

go build -o "${WORK}/gnt" ./cmd/gnt
go build -o "${WORK}/promcheck" ./cmd/promcheck
say "built gnt and promcheck"

"${WORK}/gnt" -mode serve -addr "${ADDR}" 2>>"${WORK}/serve.log" &
PID=$!

for _ in $(seq 1 200); do
  if curl -sf "${URL}/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.05
done
curl -sf "${URL}/readyz" >/dev/null || { say "server never became ready"; cat "${WORK}/serve.log"; exit 1; }
say "server up (pid ${PID})"

BODY='{"source":"distributed x(100)\nreal y(100)\n\ndo i = 1, n\n    y(i) = x(i) + 1\nenddo\n"}'
TRACE="metrics-smoke-trace-0001"

# miss, then hit, with a caller-chosen trace ID on the first request
GOT=$(curl -s -D "${WORK}/h1" -o "${WORK}/r1.json" \
  -X POST -H 'Content-Type: application/json' -H "X-Gnt-Trace: ${TRACE}" \
  -d "${BODY}" -w '%{http_code}' "${URL}/analyze")
[ "${GOT}" = "200" ] || { say "analyze got HTTP ${GOT}"; cat "${WORK}/r1.json"; exit 1; }
grep -qi "^X-Gnt-Trace: ${TRACE}" "${WORK}/h1" || { say "response did not echo the trace ID"; cat "${WORK}/h1"; exit 1; }
curl -sf -X POST -H 'Content-Type: application/json' -d "${BODY}" "${URL}/analyze" >/dev/null
say "traffic sent (1 miss + 1 hit), trace ${TRACE}"

curl -sf "${URL}/debug/requests?id=${TRACE}&format=json" | grep -q "${TRACE}" \
  || { say "/debug/requests cannot find trace ${TRACE}"; exit 1; }
say "trace retrievable at /debug/requests"

curl -sf "${URL}/metrics" -o "${WORK}/metrics.txt"
"${WORK}/promcheck" -in "${WORK}/metrics.txt" \
  -require gnt_http_requests_total=counter \
  -require gnt_http_request_duration_seconds=histogram \
  -require gnt_ladder_attempts_total=counter \
  -require gnt_stage_duration_seconds=histogram \
  -require gnt_admission_total=counter \
  -require gnt_engine_cache_events_total=counter \
  -require gnt_engine_pool_workers=gauge \
  -require gnt_ready=gauge \
  -min gnt_http_requests_total=2 \
  -min gnt_http_request_duration_seconds=2 \
  -min gnt_ladder_attempts_total=1 \
  -min gnt_ready=1
say "exposition strictly valid, required families present, traffic accounted"
say "PASS"
