package givetake_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	gt "givetake"
	"givetake/internal/comm"
	"givetake/internal/core"
)

// Integration tests over the kernel corpus in testdata/kernels: each
// kernel runs the full pipeline — parse, placement for both problems,
// static verification against the paper's correctness criteria, source
// annotation, execution, and dynamic balance — plus a per-kernel
// expectation pinning its characteristic behaviour.
func TestKernelCorpus(t *testing.T) {
	expectations := map[string]func(t *testing.T, a *comm.Analysis, annotated string){
		"redblack.f": func(t *testing.T, a *comm.Analysis, annotated string) {
			// disjoint residue classes: the odd fetch for the first sweep
			// survives the even writes
			if !strings.Contains(annotated, "READ_Send{x(3:2 * n + 1:2)}") {
				t.Errorf("missing strided odd fetch:\n%s", annotated)
			}
		},
		"spmv.f": func(t *testing.T, a *comm.Analysis, annotated string) {
			// the irregular gather vectorizes through the index array
			if !strings.Contains(annotated, "v(col(1:n))") {
				t.Errorf("missing indirect gather of v(col(1:n)):\n%s", annotated)
			}
		},
		"particle.f": func(t *testing.T, a *comm.Analysis, annotated string) {
			// the charge deposit is a SUM reduction: no gather of rho
			if !strings.Contains(annotated, "WRITE_SUM_Send{rho(cell(1:n))}") {
				t.Errorf("missing reduction deposit:\n%s", annotated)
			}
			if strings.Contains(annotated, "READ_Send{rho(cell(1:n))}") {
				t.Errorf("reduction should not gather its own item:\n%s", annotated)
			}
		},
		"jacobi2d.f": func(t *testing.T, a *comm.Analysis, annotated string) {
			// four shifted planes exchanged per step
			if !strings.Contains(annotated, "u(1:n - 1, 2:n)") ||
				!strings.Contains(annotated, "u(2:n, 3:n + 1)") {
				t.Errorf("missing 2-D plane sections:\n%s", annotated)
			}
		},
		"pipeline.f": func(t *testing.T, a *comm.Analysis, annotated string) {
			// the tail read x(4:n+3) must be fetched on both the early-exit
			// and fall-through paths (or once above both)
			if !strings.Contains(annotated, "x(4:n + 3)") {
				t.Errorf("missing tail section:\n%s", annotated)
			}
		},
	}

	files, err := filepath.Glob("testdata/kernels/*.f")
	if err != nil || len(files) == 0 {
		t.Fatalf("kernel corpus missing: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := gt.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			a, err := comm.Analyze(prog)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}

			// static criteria on both problems
			if vs := core.Verify(a.Read, a.ReadInit, core.VerifyConfig{CheckSafety: true, MaxPaths: 1000}); len(vs) > 0 {
				t.Fatalf("READ: %v", vs[0])
			}
			for _, v := range core.Verify(a.Write, a.WriteInit, core.VerifyConfig{MaxPaths: 1000}) {
				if v.Criterion != "O1" {
					t.Fatalf("WRITE: %v", v)
				}
			}

			annotated := a.AnnotatedSource(comm.DefaultOptions)
			if check := expectations[filepath.Base(file)]; check != nil {
				check(t, a, annotated)
			} else {
				t.Errorf("kernel %s has no expectation registered", file)
			}

			// dynamic: run at two sizes, require balance and a message win
			// over the naive placement
			for _, n := range []int64{8, 64} {
				cfg := gt.ExecConfig{N: n, Seed: 2,
					Scalars: map[string]int64{"steps": 2, "limit": 1 << 60}}
				tr, err := gt.Execute(a.Annotate(comm.DefaultOptions), cfg)
				if err != nil {
					t.Fatalf("execute (n=%d): %v", n, err)
				}
				if s, r := tr.UnmatchedSplit(); s != 0 || r != 0 {
					t.Fatalf("n=%d: unbalanced trace: %d sends, %d recvs", n, s, r)
				}
				naive, err := gt.Execute(gt.NaiveComm(prog, gt.AtomicComm), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if tr.Messages() > naive.Messages() {
					t.Fatalf("n=%d: GNT %d messages > naive %d", n, tr.Messages(), naive.Messages())
				}
			}
		})
	}
}
