// Latencyhiding executes the paper's Figure 11 program under the machine
// cost model for a sweep of problem sizes, comparing the naive placement,
// atomic GIVE-N-TAKE, and split GIVE-N-TAKE (sends eager, receives lazy).
// The split schedule uses the compute between the hoisted READ_Send and
// the READ_Recv at label 77 to hide message latency — the production
// *region* the paper contrasts with single-point PRE placement.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gt "givetake"
	"givetake/internal/comm"
)

const fig11 = `
distributed x(4000), y(4000)
real a(4000), b(4000), test(4000)

do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`

func main() {
	prog, err := gt.Parse(fig11)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Compare the READ side only: the WRITE problem stays pinned inside
	// this jump-containing loop by the paper's §5.3 guard and would
	// drown the read-latency story in per-iteration write-backs.
	readsOnly := comm.Options{Reads: true}
	variants := []struct {
		name string
		p    *gt.Program
	}{
		{"naive", comm.NaiveAnnotate(prog, readsOnly)},
		{"gnt-atomic", cg.Annotate(comm.Options{Reads: true})},
		{"gnt-split", cg.Annotate(comm.Options{Reads: true, Split: true})},
	}

	// test(i) is declared and zero-filled, so the branch out of the
	// i-loop is never taken and the full i- and j-loops are available
	// for latency hiding.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tplacement\tmsgs\tvolume\toverlap\twait\ttotal")
	for _, n := range []int64{64, 256, 1024} {
		for _, v := range variants {
			tr, err := gt.Execute(v.p, gt.ExecConfig{N: n, Seed: 42})
			if err != nil {
				log.Fatal(err)
			}
			_, dist, _ := tr.OverlapStats()
			cost := gt.CostModelHighLatency.Cost(tr)
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%.0f\t%.0f\n",
				n, v.name, cost.Messages, cost.Volume, dist, cost.Wait, cost.Total)
		}
	}
	w.Flush()

	fmt.Println("\nThe split placement's overlap column is the number of compute")
	fmt.Println("steps between each READ_Send and its READ_Recv — the latency")
	fmt.Println("budget the i- and j-loops hide (paper Figures 11/14).")
}
