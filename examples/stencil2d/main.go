// Stencil2d runs communication generation on a two-dimensional Jacobi
// sweep — the canonical HPF workload. The shifted planes u(i±1, j) and
// u(i, j±1) become two-dimensional sections; one vectorized exchange per
// time step replaces the per-element traffic of the naive placement, and
// the halo update (a write to the distributed array) invalidates exactly
// the overlapping planes for the next step.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gt "givetake"
)

const jacobi = `
distributed u(514, 514)
real v(514, 514)

do t = 1, steps
    do j = 2, n
        do i = 2, n
            v(i, j) = u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1)
        enddo
    enddo
    do j = 2, n
        do i = 2, n
            u(i, j) = v(i, j)
        enddo
    enddo
enddo
`

func main() {
	prog, err := gt.Parse(jacobi)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== section universe ==")
	fmt.Print(cg.Universe.Describe())
	fmt.Println()
	fmt.Println("== placement ==")
	fmt.Println(cg.AnnotatedSource(gt.SplitComm))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tsteps\tplacement\tmsgs\tvolume\ttotal(hi)")
	for _, n := range []int64{32, 128} {
		for _, v := range []struct {
			name string
			p    *gt.Program
		}{
			{"naive", gt.NaiveComm(prog, gt.AtomicComm)},
			{"gnt-split", cg.Annotate(gt.SplitComm)},
		} {
			tr, err := gt.Execute(v.p, gt.ExecConfig{N: n, Seed: 1,
				Scalars: map[string]int64{"steps": 2}})
			if err != nil {
				log.Fatal(err)
			}
			cost := gt.CostModelHighLatency.Cost(tr)
			fmt.Fprintf(w, "%d\t2\t%s\t%d\t%d\t%.0f\n", n, v.name, cost.Messages, cost.Volume, cost.Total)
		}
	}
	w.Flush()
}
