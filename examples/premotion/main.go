// Premotion runs classical partial redundancy elimination as an instance
// of GIVE-N-TAKE (a LAZY BEFORE problem, paper §1) and compares it with
// the two frameworks it generalizes: Morel–Renvoise PRE and Lazy Code
// Motion. The showcase is the paper's zero-trip loop argument: a
// loop-invariant expression inside a Fortran DO loop cannot be hoisted
// by the safe classical frameworks but moves above the loop under
// GIVE-N-TAKE.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gt "givetake"
	"givetake/internal/cfg"
	"givetake/internal/pre"
)

var cases = []struct {
	name, src string
}{
	{"straight-line CSE", `
x = b + c
y = b + c
z = b + c
`},
	{"partial redundancy", `
if c then
    x = b + c
else
    y = 1
endif
z = b + c
`},
	{"zero-trip loop invariant", `
do i = 1, n
    x(i) = b + c
enddo
`},
	{"nested loop invariant", `
do i = 1, n
    do j = 1, n
        x(j) = b + c
    enddo
enddo
`},
	{"kill inside loop", `
do i = 1, n
    x(i) = b + c
    b = x(i)
enddo
`},
}

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "case\tanalysis\tinserts\tweighted\treplaced")
	for _, c := range cases {
		prog, err := gt.Parse(c.src)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		g, err := cfg.Build(prog)
		if err != nil {
			log.Fatal(err)
		}
		p, _ := pre.BuildProblem(g)

		lcm := p.Measure(p.LazyCodeMotion())
		mr := p.Measure(p.MorelRenvoise())
		gntPl, _, err := p.GiveNTake()
		if err != nil {
			log.Fatal(err)
		}
		gnt := p.Measure(gntPl)

		fmt.Fprintf(w, "%s\tLCM\t%d\t%.0f\t%d\n", c.name, lcm.Inserts, lcm.Weighted, lcm.Replaced)
		fmt.Fprintf(w, "\tMorel-Renvoise\t%d\t%.0f\t%d\n", mr.Inserts, mr.Weighted, mr.Replaced)
		fmt.Fprintf(w, "\tGIVE-N-TAKE\t%d\t%.0f\t%d\n", gnt.Inserts, gnt.Weighted, gnt.Replaced)
	}
	w.Flush()
	fmt.Println("\nweighted = Σ inserts × 10^loopdepth (static frequency estimate);")
	fmt.Println("on the zero-trip cases only GIVE-N-TAKE reaches weight 1: the")
	fmt.Println("classical frameworks must keep the computation inside the DO loop.")
}
