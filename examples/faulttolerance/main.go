// Faulttolerance executes the paper's Figure 11 program over the
// simulated unreliable transport (internal/netsim), sweeping the drop
// probability and comparing how the atomic and split placements absorb
// recovery: the split schedule's latency-hiding window — the production
// region between READ_Send and READ_Recv — doubles as a *retry* window,
// so retransmission timeouts that an atomic operation must expose as
// wait are hidden behind the i- and j-loops. When a transfer exhausts
// its retry budget the runtime degrades gracefully, re-issuing it as an
// atomic operation at the Recv point (the LAZY placement), and the
// FaultReport records the run as degraded rather than failed.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gt "givetake"
	"givetake/internal/comm"
)

const fig11 = `
distributed x(4000), y(4000)
real a(4000), b(4000), test(4000)

do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`

func main() {
	prog, err := gt.Parse(fig11)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		log.Fatal(err)
	}
	readsOnly := comm.Options{Reads: true}
	variants := []struct {
		name string
		p    *gt.Program
	}{
		{"gnt-atomic", cg.Annotate(readsOnly)},
		{"gnt-split", cg.Annotate(comm.Options{Reads: true, Split: true})},
	}

	const n, seeds = 256, 100
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "drop\tplacement\tretries\tsuppressed\tdegraded\tunmatched\tmean wait\tmean total")
	for _, drop := range []float64{0, 0.1, 0.2, 0.4} {
		faults := gt.DefaultFaultConfig
		faults.Drop = drop
		for _, v := range variants {
			var retries, suppressed, degraded, unmatched int64
			var wait, total float64
			for s := int64(1); s <= seeds; s++ {
				tr, err := gt.Execute(v.p, gt.ExecConfig{
					N: n, Seed: 42, Faults: faults, FaultSeed: s,
				})
				if err != nil {
					log.Fatal(err)
				}
				cost := gt.CostModelHighLatency.Cost(tr)
				retries += cost.Retries
				degraded += cost.Degraded
				wait += cost.Wait
				total += cost.Total
				if tr.Faults != nil {
					suppressed += tr.Faults.Suppressed
					unmatched += tr.Faults.UnmatchedSends + tr.Faults.UnmatchedRecvs
					if !tr.Faults.Accounted() {
						log.Fatalf("fault report does not balance: %s", tr.Faults)
					}
				}
				// the balance criterion C1 survives every fault profile
				if us, ur := tr.UnmatchedSplit(); us != 0 || ur != 0 {
					log.Fatalf("unmatched halves under drop=%.1f: %d/%d", drop, us, ur)
				}
			}
			fmt.Fprintf(w, "%.1f\t%s\t%d\t%d\t%d\t%d\t%.0f\t%.0f\n",
				drop, v.name, retries, suppressed, degraded, unmatched,
				wait/seeds, total/seeds)
		}
	}
	w.Flush()

	fmt.Println("\nThe split rows keep their mean wait nearly flat as the drop rate")
	fmt.Println("climbs, while the atomic rows pay every retransmission timeout:")
	fmt.Println("the overlap window that hides latency on a reliable network")
	fmt.Println("absorbs retries on a lossy one. Degraded transfers fell back to")
	fmt.Println("an atomic re-issue at the Recv point — the LAZY placement — and")
	fmt.Println("still completed (C1 holds: unmatched is always 0).")
}
