// Irregular exercises the workload class that motivated GIVE-N-TAKE's
// home compiler (Fortran D for irregular problems, paper §2 and
// [HKK+92]): gather/scatter through an indirection array, the pattern of
// unstructured-mesh and sparse codes. The subscripts x(a(k)) defeat
// affine frameworks; the value-number universe still vectorizes them as
// the section x(a(1:n)) and the placement hoists the gather out of the
// sweep loop.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gt "givetake"
	"givetake/internal/comm"
)

// A time-stepped irregular sweep: each step gathers x through the mesh
// indirection, computes, scatters back, and a halo-style regular read
// follows. The steps loop multiplies the savings: the gather section is
// invariant (the mesh a is read-only), so a single exchange per step
// suffices — and the scatter's write-back is vectorized per step too.
const irregular = `
distributed x(4000), y(4000)
real a(4000), w(4000)

do t = 1, steps
    do k = 1, n
        w(k) = x(a(k)) + y(k+1)
    enddo
    do k = 1, n
        x(a(k)) = w(k)
    enddo
enddo
`

func main() {
	prog, err := gt.Parse(irregular)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== placement ==")
	fmt.Println(cg.AnnotatedSource(gt.SplitComm))

	variants := []struct {
		name string
		p    *gt.Program
	}{
		{"naive", comm.NaiveAnnotate(prog, comm.Options{Reads: true, Writes: true})},
		{"gnt-atomic", cg.Annotate(gt.AtomicComm)},
		{"gnt-split", cg.Annotate(gt.SplitComm)},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tsteps\tplacement\tmsgs\tvolume\twait(hi)\ttotal(hi)")
	for _, n := range []int64{128, 512} {
		for _, steps := range []int64{1, 10} {
			for _, v := range variants {
				tr, err := gt.Execute(v.p, gt.ExecConfig{N: n, Seed: 5,
					Scalars: map[string]int64{"steps": steps}})
				if err != nil {
					log.Fatal(err)
				}
				cost := gt.CostModelHighLatency.Cost(tr)
				fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%d\t%.0f\t%.0f\n",
					n, steps, v.name, cost.Messages, cost.Volume, cost.Wait, cost.Total)
			}
		}
	}
	w.Flush()
}
