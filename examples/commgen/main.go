// Commgen runs communication generation end to end on the three worked
// codes of the paper — Figure 1 (READ placement), Figure 3 (WRITE
// placement with a synthetic else branch), and Figure 11 (latency hiding
// across a jump out of a loop, Figure 14) — printing the annotated
// programs and the value-numbered section universe of each.
package main

import (
	"fmt"
	"log"

	gt "givetake"
	"givetake/internal/comm"
)

var programs = []struct {
	name, src string
}{
	{"Figure 1 (READ placement -> Figure 2)", `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`},
	{"Figure 3 (WRITE placement, synthetic else)", `
distributed x(1000)
real a(1000)

if test then
    do i = 1, n
        x(a(i)) = ...
    enddo
    do j = 1, n
        ... = x(j+5)
    enddo
endif
do k = 1, n
    ... = x(k+5)
enddo
`},
	{"Figure 11 (jump out of loop -> Figure 14)", `
distributed x(1000), y(1000)
real a(1000), b(1000)

do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`},
}

func main() {
	for _, p := range programs {
		prog, err := gt.Parse(p.src)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		cg, err := gt.GenerateComm(prog)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("=== %s ===\n", p.name)
		fmt.Println("communication universe (value-numbered sections):")
		fmt.Print(cg.Universe.Describe())
		fmt.Println()
		fmt.Println("split placement (sends eager, receives lazy):")
		fmt.Println(cg.AnnotatedSource(gt.SplitComm))
		fmt.Println("atomic placement (one operation per production):")
		fmt.Println(cg.AnnotatedSource(gt.AtomicComm))
		fmt.Println("naive strawman (per-element, Figure 2 left):")
		fmt.Println(gt.Format(comm.NaiveAnnotate(prog, comm.Options{Reads: true, Writes: true})))
	}
}
