// Quickstart: parse the paper's Figure 1 program, run GIVE-N-TAKE
// communication generation, and print the annotated program of Figure 2
// (right side): one vectorized READ_Send hoisted above the i-loop for
// latency hiding, and one READ_Recv per branch.
package main

import (
	"fmt"
	"log"

	gt "givetake"
)

const fig1 = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

func main() {
	prog, err := gt.Parse(fig1)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== input (paper Figure 1) ==")
	fmt.Println(gt.Format(prog))
	fmt.Println("== GIVE-N-TAKE placement (paper Figure 2, right) ==")
	fmt.Println(cg.AnnotatedSource(gt.SplitComm))

	// The placement is balanced, safe, and sufficient; check it against
	// the paper's correctness criteria on all bounded paths.
	if vs := gt.Verify(cg.Read, cg.ReadInit, gt.VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		log.Fatalf("placement failed verification: %v", vs[0])
	}
	fmt.Println("placement verified: C1 balance, C2 safety, C3 sufficiency hold on all paths")
}
