// Prefetch demonstrates the paper's §6 claim that GIVE-N-TAKE carries
// over to memory-hierarchy problems unchanged: the same solver that
// splits a READ into send and receive splits a memory access into a
// PREFETCH issue (eager) and a demand fence (lazy). Loop-invariant
// sections prefetch once outside the loop nest; the distance between
// issue and demand is the miss latency the placement hides.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	gt "givetake"
	"givetake/internal/interp"
	"givetake/internal/memopt"
)

const stencil = `
real u(8000), v(8000), w(8000), coef(10)

do i = 1, n
    w(i) = i * 3
enddo
do t = 1, steps
    do i = 1, n
        v(i) = u(i) * coef(1) + w(i)
    enddo
    do i = 1, n
        u(i) = v(i) * coef(2)
    enddo
enddo
`

func main() {
	a, err := memopt.AnalyzeSource(stencil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== prefetch placement ==")
	fmt.Println(a.AnnotatedSource())

	if vs := gt.Verify(a.Solution, a.Init, gt.VerifyConfig{}); len(vs) > 0 {
		log.Fatalf("placement violates the criteria: %v", vs[0])
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tmissLatency\tstalls(prefetched)\tstalls(all-demand)\thidden")
	for _, n := range []int64{128, 1024} {
		tr, err := interp.Run(a.Annotate(), interp.Config{
			N: n, Seed: 1, Scalars: map[string]int64{"steps": 4}})
		if err != nil {
			log.Fatal(err)
		}
		for _, lat := range []float64{30, 300} {
			model := memopt.CacheModel{MissLatency: lat}
			stalls := model.Stalls(tr)
			demand := 0.0
			for _, e := range tr.Events {
				if e.Op == "PREFETCH" && e.Half == "Recv" {
					demand += lat
				}
			}
			fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%.0f%%\n",
				n, lat, stalls, demand, 100*(1-stalls/demand))
		}
	}
	w.Flush()
}
