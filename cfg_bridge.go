package givetake

import (
	"givetake/internal/cfg"
	"givetake/internal/ir"
)

// cfgBuild isolates the cfg dependency of BuildGraph so the facade file
// stays focused on the public surface.
func cfgBuild(p *ir.Program) (*cfg.Graph, error) { return cfg.Build(p) }
