distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
