distributed x(1000), y(1000)
real a(1000), b(1000)

do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
