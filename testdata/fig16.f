distributed x(1000)

do i = 1, n
    x(i) = 5
    if test(i) goto 9
enddo
9 continue
... = x(3)
