distributed x(1000)
real a(1000)

if test then
    do i = 1, n
        x(a(i)) = ...
    enddo
    do j = 1, n
        ... = x(j+5)
    enddo
endif
do k = 1, n
    ... = x(k+5)
enddo
