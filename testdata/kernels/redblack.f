! red/black successive over-relaxation: the even and odd sweeps
! interleave writes and reads of provably disjoint residue classes
distributed x(8000)
real w(8000)

do t = 1, steps
    do i = 1, n
        w(i) = x(2 * i + 1)
    enddo
    do i = 1, n
        x(2 * i) = w(i)
    enddo
    do i = 1, n
        w(i) = x(2 * i)
    enddo
    do i = 1, n
        x(2 * i + 1) = w(i)
    enddo
enddo
