! staged pipeline with an early exit: compute stages feeding a
! conditional bail-out to a reduction tail, exercising jump edges
distributed x(8000), y(8000)
real a(8000), w(8000)

do i = 1, n
    w(i) = x(i) + 1
enddo
do i = 1, n
    y(i) = w(i)
    if (w(i) > limit) goto 90
enddo
do i = 1, n
    w(i) = y(i) * 2
enddo
90 do i = 1, n
    a(i) = x(i + 3)
enddo
