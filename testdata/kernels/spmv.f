! sparse matrix-vector product in CSR-like form: the gather of the
! source vector goes through the column-index array (irregular), the
! destination accumulates locally
distributed v(8000), r(8000)
real col(8000), val(8000), rowsum(8000)

do t = 1, steps
    do i = 1, n
        rowsum(i) = val(i) * v(col(i))
    enddo
    do i = 1, n
        r(i) = rowsum(i)
    enddo
enddo
