! particle push with scatter-add deposit: the charge deposit is a SUM
! reduction through the cell-index array, then the field is re-read
distributed rho(8000), e(8000)
real cell(8000), q(8000), f(8000)

do t = 1, steps
    do p = 1, n
        rho(cell(p)) = rho(cell(p)) + q(p)
    enddo
    do p = 1, n
        f(p) = e(cell(p))
    enddo
enddo
