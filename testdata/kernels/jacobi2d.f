! 2-D Jacobi relaxation with halo exchange per time step
distributed u(514, 514)
real v(514, 514)

do t = 1, steps
    do j = 2, n
        do i = 2, n
            v(i, j) = u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1)
        enddo
    enddo
    do j = 2, n
        do i = 2, n
            u(i, j) = v(i, j)
        enddo
    enddo
enddo
