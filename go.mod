module givetake

go 1.22
