package givetake_test

import (
	"strings"
	"testing"

	gt "givetake"
	"givetake/internal/bitset"
)

// Facade-level tests: the public API drives the whole pipeline.

func TestAPIPipeline(t *testing.T) {
	prog, err := gt.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	// parse → format round trip
	again, err := gt.Parse(gt.Format(prog))
	if err != nil {
		t.Fatalf("formatted program does not re-parse: %v", err)
	}
	if gt.Format(again) != gt.Format(prog) {
		t.Fatal("format is not a fixed point")
	}

	cg, err := gt.GenerateComm(prog)
	if err != nil {
		t.Fatal(err)
	}
	split := cg.AnnotatedSource(gt.SplitComm)
	if !strings.Contains(split, "READ_Send{x(a(1:n))}") {
		t.Fatalf("split placement missing vectorized send:\n%s", split)
	}
	if vs := gt.Verify(cg.Read, cg.ReadInit, gt.VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("verification failed: %v", vs[0])
	}

	trace, err := gt.Execute(cg.Annotate(gt.SplitComm), gt.ExecConfig{N: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Messages() != 1 {
		t.Fatalf("messages = %d, want 1", trace.Messages())
	}
	cost := gt.CostModelHighLatency.Cost(trace)
	if cost.Total <= 0 || cost.Messages != 1 {
		t.Fatalf("cost = %+v", cost)
	}
}

func TestAPIFaultyExecution(t *testing.T) {
	prog, err := gt.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := gt.GenerateComm(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gt.ExecConfig{N: 64, Seed: 1, Faults: gt.DefaultFaultConfig, FaultSeed: 9}
	trace, err := gt.Execute(cg.Annotate(gt.SplitComm), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Faults == nil {
		t.Fatal("faulty execution must carry a FaultReport")
	}
	var rep gt.FaultReport = *trace.Faults
	if !rep.Accounted() {
		t.Fatalf("report does not balance: %s", rep)
	}
	if s, r := trace.UnmatchedSplit(); s != 0 || r != 0 {
		t.Fatalf("faults broke balance: %d/%d unmatched", s, r)
	}
	cost := gt.CostModelHighLatency.Cost(trace)
	if cost.Total != cost.Compute+cost.Wait+cost.Retrans {
		t.Fatalf("cost identity broken: %+v", cost)
	}
	// a custom profile flows through the facade type
	var fc gt.FaultConfig
	if fc.Enabled() {
		t.Fatal("zero FaultConfig must be disabled")
	}
}

func TestAPISolverDirect(t *testing.T) {
	prog, err := gt.Parse("a = 1\ns = x(1)\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gt.BuildGraph(prog)
	if err != nil {
		t.Fatal(err)
	}
	init := gt.NewInit(len(g.Nodes))
	for _, n := range g.Nodes {
		if strings.Contains(n.String(), "s = x(1)") {
			init.AddTake(n, 1, bitset.Of(1, 0))
		}
	}
	s := gt.MustSolve(g, 1, init)
	eagerSites, lazySites := 0, 0
	for _, n := range g.Nodes {
		eagerSites += s.Place(gt.Eager).ResIn[n.ID].Count()
		lazySites += s.Place(gt.Lazy).ResIn[n.ID].Count()
	}
	if eagerSites != 1 || lazySites != 1 {
		t.Fatalf("production sites eager=%d lazy=%d, want 1 each", eagerSites, lazySites)
	}
	if vs := gt.Verify(s, init, gt.VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("verify: %v", vs)
	}
}

func TestAPIAfterProblem(t *testing.T) {
	prog, err := gt.Parse("x(1) = 5\nb = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gt.BuildGraph(prog)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := gt.ReverseGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	init := gt.NewInit(len(g.Nodes))
	for _, n := range rev.Nodes {
		if strings.Contains(n.String(), "x(1) = 5") {
			init.AddTake(n, 1, bitset.Of(1, 0))
		}
	}
	s := gt.MustSolve(rev, 1, init)
	if vs := gt.Verify(s, init, gt.VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("verify: %v", vs)
	}
}

func TestAPINaiveComm(t *testing.T) {
	prog, err := gt.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	naive := gt.NaiveComm(prog, gt.AtomicComm)
	tr, err := gt.Execute(naive, gt.ExecConfig{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() != 10 {
		t.Fatalf("naive messages = %d, want N = 10", tr.Messages())
	}
}
