package givetake_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gt "givetake"
)

// corpusFiles returns every mini-Fortran program in testdata, including
// the kernels.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pat := range []string{"testdata/*.f", "testdata/kernels/*.f"} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) < 5 {
		t.Fatalf("corpus unexpectedly small: %v", files)
	}
	return files
}

// The solver counters must witness the paper's §5.2 complexity claim on
// every corpus program: each of the fifteen equations evaluated exactly
// once per node per schedule (20 evaluations per node in total), with
// word-level work SetOps × Words.
func TestCorpusOnePassInvariant(t *testing.T) {
	for _, file := range corpusFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := gt.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			a, err := gt.GenerateCommObs(prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			counters := a.Counters()
			if len(counters) == 0 {
				t.Fatal("no solver counters")
			}
			for _, c := range counters {
				if err := c.OnePass(); err != nil {
					t.Error(err)
				}
				if want := int64(20 * c.Nodes); c.EquationEvals != want {
					t.Errorf("%s: EquationEvals = %d, want %d (20 × %d nodes)",
						c.Problem, c.EquationEvals, want, c.Nodes)
				}
				if c.WordOps != c.SetOps*int64(c.Words) {
					t.Errorf("%s: WordOps %d != SetOps %d × Words %d",
						c.Problem, c.WordOps, c.SetOps, c.Words)
				}
			}
		})
	}
}

// A recorder threaded through the facade must capture the pipeline
// phases and render a loadable trace for every corpus program.
func TestCorpusRecorderTrace(t *testing.T) {
	for _, file := range corpusFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := gt.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			rec := gt.NewRecorder(gt.ObsConfig{})
			if _, err := gt.GenerateCommObs(prog, rec); err != nil {
				t.Fatal(err)
			}
			phases := rec.Phases()
			want := map[string]bool{"cfg-build": false, "interval-reduce": false,
				"solve-read": false, "solve-write": false}
			for _, p := range phases {
				if _, ok := want[p.Name]; ok {
					want[p.Name] = true
				}
			}
			for name, seen := range want {
				if !seen {
					t.Errorf("recorder missing %q phase", name)
				}
			}
			var sb strings.Builder
			if err := rec.WriteTrace(&sb); err != nil {
				t.Fatal(err)
			}
			var tf struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal([]byte(sb.String()), &tf); err != nil {
				t.Fatalf("trace not valid JSON: %v", err)
			}
			if len(tf.TraceEvents) < len(want) {
				t.Errorf("trace has %d events, want ≥ %d", len(tf.TraceEvents), len(want))
			}
		})
	}
}
