// Package givetake reproduces GIVE-N-TAKE, the balanced code placement
// framework of von Hanxleden and Kennedy (PLDI 1994), together with the
// full stack the paper builds on: a mini-Fortran frontend, interval flow
// graphs over Tarjan intervals, the fifteen-equation elimination solver
// with EAGER/LAZY and BEFORE/AFTER problem flavors, communication
// generation for distributed arrays (READ/WRITE send–receive splitting
// with message vectorization and latency hiding), classical PRE baselines
// (Morel–Renvoise and Lazy Code Motion), an interpreter, and an α–β
// machine cost model.
//
// The facade exposes the handful of entry points most users need:
//
//	prog, err := givetake.Parse(src)             // mini-Fortran → AST
//	cg, err := givetake.GenerateComm(prog)       // solve READ + WRITE placement
//	fmt.Print(cg.AnnotatedSource(givetake.SplitComm))
//	trace, err := givetake.Execute(annotated, givetake.ExecConfig{N: 1000})
//	cost := givetake.CostModelHighLatency.Cost(trace)
//
// Lower-level access — the raw solver, the interval graph, the PRE
// baselines — lives in the internal packages and is re-exported here
// where it forms part of the stable API.
package givetake

import (
	"context"

	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/core"
	"givetake/internal/engine"
	"givetake/internal/frontend"
	"givetake/internal/interp"
	"givetake/internal/interval"
	"givetake/internal/ir"
	"givetake/internal/machine"
	"givetake/internal/netsim"
	"givetake/internal/obs"
	"givetake/internal/serve"
)

// Program is a parsed mini-Fortran compilation unit.
type Program = ir.Program

// Parse parses and checks mini-Fortran source: DO loops, IF/ELSE,
// forward GOTOs out of loops, `real`/`distributed` array declarations,
// and '...' placeholders, as used in the paper's figures.
func Parse(src string) (*Program, error) { return frontend.Parse(src) }

// Format renders a program back to source text.
func Format(p *Program) string { return ir.ProgramString(p) }

// CommGen is the result of communication generation: the solved READ
// (BEFORE) and WRITE (AFTER) placement problems over the program's
// value-numbered section universe.
type CommGen = comm.Analysis

// CommOptions selects what AnnotatedSource/Annotate emit.
type CommOptions = comm.Options

// SplitComm emits Send/Recv halves (EAGER + LAZY solutions) for reads
// and writes — the paper's latency-hiding placement.
var SplitComm = comm.DefaultOptions

// AtomicComm emits one atomic operation per production at the LAZY
// placement, e.g. for a runtime-library call.
var AtomicComm = CommOptions{Reads: true, Writes: true}

// GenerateComm analyzes a program and solves both communication
// placement problems.
func GenerateComm(p *Program) (*CommGen, error) { return comm.Analyze(p) }

// NaiveComm is the per-reference strawman of the paper's Figure 2 left:
// each distributed reference fetches its element in place.
func NaiveComm(p *Program, opt CommOptions) *Program { return comm.NaiveAnnotate(p, opt) }

// Solver-level API -----------------------------------------------------

// Solution is a solved GIVE-N-TAKE instance carrying every dataflow
// variable of the paper's Figure 13 plus the EAGER and LAZY results.
type Solution = core.Solution

// Init carries the initial variables TAKE_init, STEAL_init, GIVE_init.
type Init = core.Init

// Graph is the Tarjan-interval flow graph of §3.3.
type Graph = interval.Graph

// Mode selects the production schedule.
type Mode = core.Mode

// Eager and Lazy name the two schedules of a solution.
const (
	Eager = core.Eager
	Lazy  = core.Lazy
)

// BuildGraph constructs the interval flow graph of a program: CFG with
// one node per statement, critical edges split, loops discovered, edges
// classified ENTRY/CYCLE/JUMP/FORWARD/SYNTHETIC.
func BuildGraph(p *Program) (*Graph, error) {
	c, err := cfgBuild(p)
	if err != nil {
		return nil, err
	}
	return interval.FromCFG(c)
}

// ReverseGraph builds the reversed view used to solve AFTER problems
// (production follows consumption, paper §5.3).
func ReverseGraph(g *Graph) (*Graph, error) { return interval.Reverse(g) }

// Solve runs the GiveNTake algorithm (paper Fig. 15): one evaluation of
// each equation per node, O(E) bit-vector steps. A broken one-pass
// invariant (a solver bug or corrupted input) surfaces as an error
// satisfying errors.Is(err, ErrInvariant) instead of a panic.
func Solve(g *Graph, universe int, init *Init) (*Solution, error) {
	return core.Solve(g, universe, init)
}

// SolveCtx is Solve with cooperative cancellation: the solver polls ctx
// at interval-node granularity and abandons the solve with ctx.Err()
// once it is canceled.
func SolveCtx(ctx context.Context, g *Graph, universe int, init *Init) (*Solution, error) {
	return core.SolveCtx(ctx, g, universe, init)
}

// MustSolve is Solve for callers that treat failure as a programming
// error; it panics on any solver error.
func MustSolve(g *Graph, universe int, init *Init) *Solution {
	return core.MustSolve(g, universe, init)
}

// ErrInvariant is the sentinel matched by errors.Is for solver errors
// caused by a broken one-pass O(E) evaluation invariant.
var ErrInvariant = core.ErrInvariant

// AtomicSolution returns the degenerate always-correct fallback
// placement for a graph: every item is produced exactly at its
// consumption point (trivially balanced, never fails). The returned
// Init is the runtime contract the placement verifies against. This is
// the bottom rung of the serve degradation ladder.
func AtomicSolution(g *Graph, universe int, init *Init) (*Solution, *Init) {
	return core.Atomic(g, universe, init)
}

// NewInit returns empty initial variables for a graph of n nodes.
func NewInit(n int) *Init { return core.NewInit(n) }

// Verify checks a solution against the paper's correctness criteria
// (C1 balance, C2 safety, C3 sufficiency) on all bounded execution
// paths; it returns the violations found (nil for a correct placement).
func Verify(s *Solution, init *Init, cfg VerifyConfig) []core.Violation {
	return core.Verify(s, init, cfg)
}

// VerifyConfig bounds the path enumeration of Verify.
type VerifyConfig = core.VerifyConfig

// Static verification ---------------------------------------------------

// CheckProblem is one solved placement problem for StaticVerify: the
// graph it was solved on, the initial variables, and the solution.
type CheckProblem = check.Problem

// CheckResult aggregates the findings of a static placement check,
// split into errors (criterion violations) and warnings (lints).
type CheckResult = check.Result

// CheckDiagnostic is one structured finding: a stable GNT0xx/GNT1xx
// code, the violated criterion, the offending node with its source
// anchor, and a concrete path witness.
type CheckDiagnostic = check.Diagnostic

// StaticVerify proves the paper's criteria (C1 balance, C2 safety,
// C3 sufficiency, O1 no re-production) over *all* execution paths of
// one solved problem by a fixed-point dataflow analysis that shares no
// equation code with the solver. Where Verify samples bounded paths,
// StaticVerify's pass is a proof. The combined pipeline hook — both
// problems plus the communication linter — is CommGen.CheckPlacement.
func StaticVerify(p *CheckProblem) *CheckResult { return check.Verify(p) }

// Execution and cost modeling ------------------------------------------

// ExecConfig parameterizes program execution.
type ExecConfig = interp.Config

// Trace is the dynamic communication trace of one execution.
type Trace = interp.Trace

// Execute runs a (possibly annotated) program and records its
// communication trace.
func Execute(p *Program, cfg ExecConfig) (*Trace, error) { return interp.Run(p, cfg) }

// ExecuteCtx is Execute with cooperative cancellation; on step-budget
// exhaustion or cancellation it returns the partial trace alongside the
// error.
func ExecuteCtx(ctx context.Context, p *Program, cfg ExecConfig) (*Trace, error) {
	return interp.RunCtx(ctx, p, cfg)
}

// ErrStepLimit is the sentinel matched by errors.Is when an execution
// exhausts its step budget.
var ErrStepLimit = interp.ErrStepLimit

// CostModel is an α–β latency/bandwidth model with overlap credit.
type CostModel = machine.Model

// Predefined cost models.
var (
	// CostModelHighLatency resembles an iPSC-class message-passing
	// machine: startup dominates.
	CostModelHighLatency = machine.HighLatency
	// CostModelLowLatency resembles a fast-interconnect machine.
	CostModelLowLatency = machine.LowLatency
)

// Fault-tolerant execution ---------------------------------------------

// FaultConfig parameterizes the simulated unreliable transport: seeded
// drop/dup/delay/reorder injection plus the recovery protocol (ack
// timeout, bounded exponential backoff with jitter, per-message retry
// budget). Set it on ExecConfig.Faults; the zero value executes over a
// perfectly reliable network, byte-identical to a plain run.
type FaultConfig = netsim.FaultConfig

// FaultReport summarizes one faulty execution: injected faults versus
// retransmitted, suppressed, recovered, and degraded transfers. It is
// available as Trace.Faults after a faulty Execute.
type FaultReport = netsim.FaultReport

// DefaultFaultConfig is the moderate-loss profile used by
// `gnt -mode run -faults`.
var DefaultFaultConfig = netsim.Default

// Observability ---------------------------------------------------------

// Collector receives phase spans and counters from the pipeline. All
// instrumented entry points accept a nil Collector, which records
// nothing and costs nothing.
type Collector = obs.Collector

// ObsConfig selects what a Recorder captures (e.g. allocation deltas).
type ObsConfig = obs.Config

// Recorder is the standard Collector: it accumulates spans and
// counters and renders them as a Chrome trace-event JSON profile
// (WriteTrace, Perfetto-loadable) or as Report sections.
type Recorder = obs.Recorder

// Report is the aggregated observability output of one pipeline run:
// phase timings, solver counters, runtime statistics, cost models.
type Report = obs.Report

// SolverCounters is the work profile of one solve — the empirical
// witness of the paper's one-pass O(E) complexity claim.
type SolverCounters = obs.SolverCounters

// NewRecorder returns an empty recorder whose epoch is now.
func NewRecorder(cfg ObsConfig) *Recorder { return obs.NewRecorder(cfg) }

// GenerateCommObs is GenerateComm with observability: pipeline stages
// report spans to col, and the returned analysis exposes solver
// counters via its Counters method. A nil col behaves exactly like
// GenerateComm.
func GenerateCommObs(p *Program, col Collector) (*CommGen, error) {
	return comm.AnalyzeObs(p, col)
}

// GenerateCommCtx is GenerateCommObs with cooperative cancellation:
// the pipeline checks ctx between stages and the solver polls it at
// interval-node granularity.
func GenerateCommCtx(ctx context.Context, p *Program, col Collector) (*CommGen, error) {
	return comm.AnalyzeCtx(ctx, p, col)
}

// CommOpts tunes placement analysis beyond the defaults; see comm.Opts.
type CommOpts = comm.Opts

// GenerateCommOpts is GenerateCommCtx with analysis options — e.g.
// SuppressHoist, the paper's STEAL_init conservative mode (§4.1), which
// pins production inside every loop (rung 2 of the degradation ladder).
func GenerateCommOpts(ctx context.Context, p *Program, col Collector, opt CommOpts) (*CommGen, error) {
	return comm.AnalyzeOpts(ctx, p, col, opt)
}

// AtomicFallbackComm builds the rung-3 fallback analysis: atomic
// production at each consumption point, no dataflow solving. It cannot
// hit solver invariants and is the never-fails floor of the serve
// degradation ladder.
func AtomicFallbackComm(p *Program, col Collector) (*CommGen, error) {
	return comm.AtomicFallback(p, col)
}

// Concurrent analysis engine ---------------------------------------------

// Engine schedules analysis pipelines over a bounded worker pool: the
// independent READ and WRITE halves of each request solve in parallel
// on arena-backed bit-vector slabs, repeated requests are served from a
// content-addressed LRU result cache with single-flight deduplication,
// and batches fan out with fan-out bounded by the worker count.
type Engine = engine.Engine

// EngineConfig parameterizes an Engine: worker count, cache byte
// budget, and an optional counter collector.
type EngineConfig = engine.Config

// EngineStats is an Engine's observable state: pool task/panic and
// admission counters plus cache hit/miss/follower/eviction counters.
type EngineStats = engine.Stats

// EngineJob is one analysis to schedule on an Engine.
type EngineJob = engine.Job

// EngineResult is one completed engine analysis; its solutions alias
// leased arena memory — call Release after rendering.
type EngineResult = engine.Result

// BatchItem and BatchResult are the inputs and ordered outcomes of
// Engine.AnalyzeBatch.
type (
	BatchItem   = engine.BatchItem
	BatchResult = engine.BatchResult
)

// NewEngine builds an engine and starts its workers.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// CacheKey derives the content address of one analysis request — a
// SHA-256 over a versioned canonical encoding of source, options, and
// caller extras. Identical keys are guaranteed byte-identical results.
func CacheKey(source string, opt CommOpts, extra ...string) string {
	return engine.CacheKey(source, opt, extra...)
}

// Analysis service --------------------------------------------------------

// ServeConfig parameterizes the hardened analysis service: listen
// address, admission control (bounded in-flight pool with a queue
// timeout), per-request deadlines, and execution/source budgets.
type ServeConfig = serve.Config

// ServeRequest is one analysis job posted to the service.
type ServeRequest = serve.Request

// ServeResponse is the structured result: the winning degradation
// rung, the full ladder of attempts, the annotated program, and the
// verification summary.
type ServeResponse = serve.Response

// NewServer builds the analysis service; mount its Handler or call
// ListenAndServe. Every request descends the degradation ladder —
// full placement, no-hoist retry, atomic floor — behind per-request
// panic isolation, so the process survives any input. The error covers
// journal storage that cannot be opened (ServeConfig.JournalDir).
func NewServer(cfg ServeConfig) (*serve.Server, error) { return serve.New(cfg) }
